package wal

import (
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"testing/quick"

	"timingsubg/internal/graph"
)

func testEdge(i int64) graph.Edge {
	return graph.Edge{
		From:      graph.VertexID(i * 3),
		To:        graph.VertexID(i*3 + 1),
		FromLabel: graph.Label(i % 7),
		ToLabel:   graph.Label(i % 5),
		EdgeLabel: graph.Label(i % 3),
		Time:      graph.Timestamp(i + 1),
	}
}

func appendN(t *testing.T, l *Log, from, n int64) {
	t.Helper()
	for i := from; i < from+n; i++ {
		seq, err := l.Append(testEdge(i))
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		if seq != i {
			t.Fatalf("append %d: got seq %d", i, seq)
		}
	}
}

func replayAll(t *testing.T, dir string, from int64) []graph.Edge {
	t.Helper()
	var out []graph.Edge
	if _, err := Replay(dir, from, func(seq int64, e graph.Edge) error {
		out = append(out, e)
		return nil
	}); err != nil {
		t.Fatalf("replay: %v", err)
	}
	return out
}

func TestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 0, 100)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	got := replayAll(t, dir, 0)
	if len(got) != 100 {
		t.Fatalf("replayed %d records, want 100", len(got))
	}
	for i, e := range got {
		want := testEdge(int64(i))
		want.ID = graph.EdgeID(i)
		if e != want {
			t.Fatalf("record %d: got %+v want %+v", i, e, want)
		}
	}
}

func TestReopenContinuesSequence(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 0, 37)
	l.Close()

	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if l2.Seq() != 37 {
		t.Fatalf("reopened seq = %d, want 37", l2.Seq())
	}
	appendN(t, l2, 37, 13)
	l2.Close()

	if got := replayAll(t, dir, 0); len(got) != 50 {
		t.Fatalf("replayed %d, want 50", len(got))
	}
}

func TestSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 0, 200)
	l.Close()

	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 3 {
		t.Fatalf("expected multiple segments at 128-byte rotation, got %d", len(segs))
	}
	if got := replayAll(t, dir, 0); len(got) != 200 {
		t.Fatalf("replayed %d, want 200", len(got))
	}
}

func TestReplayFrom(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 0, 150)
	l.Close()

	for _, from := range []int64{0, 1, 73, 149, 150} {
		got := replayAll(t, dir, from)
		if int64(len(got)) != 150-from {
			t.Fatalf("replay from %d: got %d records, want %d", from, len(got), 150-from)
		}
		if len(got) > 0 && got[0].ID != graph.EdgeID(from) {
			t.Fatalf("replay from %d: first ID %d", from, got[0].ID)
		}
	}
}

func TestTornTailTruncatedOnOpen(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 0, 20)
	l.Close()

	segs, _ := listSegments(dir)
	path := filepath.Join(dir, segs[len(segs)-1].name)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-write: chop a few bytes off the tail.
	if err := os.WriteFile(path, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}

	got := replayAll(t, dir, 0)
	if len(got) != 19 {
		t.Fatalf("after torn tail: replayed %d, want 19", len(got))
	}

	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen after torn tail: %v", err)
	}
	if l2.Seq() != 19 {
		t.Fatalf("reopened seq = %d, want 19", l2.Seq())
	}
	appendN(t, l2, 19, 5)
	l2.Close()
	if got := replayAll(t, dir, 0); len(got) != 24 {
		t.Fatalf("after repair+append: replayed %d, want 24", len(got))
	}
}

func TestCorruptTailByteStopsReplayCleanly(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 0, 10)
	l.Close()

	segs, _ := listSegments(dir)
	path := filepath.Join(dir, segs[0].name)
	data, _ := os.ReadFile(path)
	data[len(data)-2] ^= 0xFF // flip a bit inside the last record's CRC
	os.WriteFile(path, data, 0o644)

	got := replayAll(t, dir, 0)
	if len(got) != 9 {
		t.Fatalf("replayed %d, want 9 (last record dropped)", len(got))
	}
}

func TestTruncateFront(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 0, 300)

	if err := l.TruncateFront(200); err != nil {
		t.Fatal(err)
	}
	segs, _ := listSegments(dir)
	if segs[0].firstSeq > 200 {
		t.Fatalf("truncate removed records >= keep: first segment starts at %d", segs[0].firstSeq)
	}
	// Records >= 200 must all survive.
	var seen int
	if _, err := Replay(dir, 200, func(seq int64, e graph.Edge) error {
		if seq < 200 {
			t.Fatalf("replay from 200 yielded seq %d", seq)
		}
		seen++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if seen != 100 {
		t.Fatalf("records >= 200 after truncate: %d, want 100", seen)
	}
	l.Close()
}

func TestTruncateFrontNeverRemovesOpenSegment(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 0, 10)
	if err := l.TruncateFront(10); err != nil {
		t.Fatal(err)
	}
	segs, _ := listSegments(dir)
	if len(segs) != 1 {
		t.Fatalf("open segment was removed: %d segments left", len(segs))
	}
	l.Close()
}

func TestAppendAfterCloseFails(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	l.Close()
	if _, err := l.Append(testEdge(0)); err == nil {
		t.Fatal("append after close succeeded")
	}
}

func TestReplayEmptyDir(t *testing.T) {
	dir := t.TempDir()
	n, err := Replay(dir, 0, func(int64, graph.Edge) error { t.Fatal("callback on empty log"); return nil })
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("empty replay returned next seq %d", n)
	}
}

func TestSyncEvery(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SyncEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 0, 5)
	l.Close()
	if got := replayAll(t, dir, 0); len(got) != 5 {
		t.Fatalf("replayed %d, want 5", len(got))
	}
}

// TestReplayFromOnEmptyDir is the regression test for the empty-log
// skip-loop panic: replaying an empty directory with from > 0 (a
// checkpoint ahead of a lost log) must return (from, nil), not panic.
func TestReplayFromOnEmptyDir(t *testing.T) {
	for _, from := range []int64{1, 42, 1 << 30} {
		n, err := Replay(t.TempDir(), from, func(int64, graph.Edge) error {
			t.Fatal("callback on empty log")
			return nil
		})
		if err != nil {
			t.Fatalf("from=%d: %v", from, err)
		}
		if n != from {
			t.Fatalf("from=%d: returned next seq %d, want %d", from, n, from)
		}
	}
}

// TestSkipToThenTruncateFront covers the checkpoint-newer-than-lost-tail
// recovery path end to end: SkipTo fast-forwards the cursor, reclaims
// the stale segments below it, and leaves a log that appends and
// replays cleanly from the skip point.
func TestSkipToThenTruncateFront(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 0, 100)
	l.Close()

	// Simulate: a checkpoint at 150 survived but the log tail past 100
	// did not (fsync was off). Recovery must continue at 150.
	l2, err := Open(dir, Options{SegmentBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	if err := l2.SkipTo(150); err != nil {
		t.Fatal(err)
	}
	if l2.Seq() != 150 {
		t.Fatalf("after SkipTo: seq %d, want 150", l2.Seq())
	}
	if first, _ := FirstSeq(dir); first != 150 {
		t.Fatalf("after SkipTo: FirstSeq %d, want 150 (stale segments reclaimed)", first)
	}
	if gate := l2.CheckpointLSN(); gate != 150 {
		t.Fatalf("after SkipTo: gate %d, want 150", gate)
	}
	appendN(t, l2, 150, 20)
	l2.Close()

	got := replayAll(t, dir, 150)
	if len(got) != 20 {
		t.Fatalf("replay from 150: %d records, want 20", len(got))
	}
	if got[0].ID != 150 {
		t.Fatalf("first replayed ID %d, want 150", got[0].ID)
	}
	// SkipTo is idempotent at or below the cursor.
	l3, err := Open(dir, Options{SegmentBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	if err := l3.SkipTo(100); err != nil {
		t.Fatal(err)
	}
	if l3.Seq() != 170 {
		t.Fatalf("backward SkipTo moved the cursor: %d", l3.Seq())
	}
	l3.Close()
}

// TestTruncateFrontGatedByCheckpointLSN: once a checkpoint LSN is
// declared, TruncateFront must never reclaim records at or above it,
// no matter what the caller asks for.
func TestTruncateFrontGatedByCheckpointLSN(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 0, 300)
	l.SetCheckpointLSN(100)
	if err := l.TruncateFront(250); err != nil {
		t.Fatal(err)
	}
	// Everything from the gate up must survive.
	var seen int
	if _, err := Replay(dir, 100, func(seq int64, e graph.Edge) error {
		seen++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if seen != 200 {
		t.Fatalf("records >= 100 after gated truncate: %d, want 200", seen)
	}
	// Raising the gate unlocks the rest; lowering it is a no-op.
	l.SetCheckpointLSN(50)
	if gate := l.CheckpointLSN(); gate != 100 {
		t.Fatalf("gate lowered to %d", gate)
	}
	l.SetCheckpointLSN(250)
	if err := l.TruncateFront(250); err != nil {
		t.Fatal(err)
	}
	first, _ := FirstSeq(dir)
	if first > 250 {
		t.Fatalf("truncate removed records >= 250: first %d", first)
	}
	if first <= 100 {
		t.Fatalf("raised gate did not unlock truncation: first %d", first)
	}
	l.Close()
}

// TestFirstSeqTornSegmentOnly: a directory holding only a torn
// (headerless) segment still reports the LSN its name pins — and Open
// repairs the directory without losing that cursor.
func TestFirstSeqTornSegmentOnly(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, segName(7)), []byte(magic[:3]), 0o644); err != nil {
		t.Fatal(err)
	}
	first, err := FirstSeq(dir)
	if err != nil {
		t.Fatal(err)
	}
	if first != 7 {
		t.Fatalf("FirstSeq = %d, want 7 (name-derived)", first)
	}
	// Replay treats the headerless segment as an empty log tail.
	n, err := Replay(dir, 0, func(int64, graph.Edge) error {
		t.Fatal("callback on headerless log")
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 7 {
		t.Fatalf("replay next seq = %d, want 7", n)
	}
	// Open drops the torn file but keeps the LSN cursor it pinned.
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if l.Seq() != 7 {
		t.Fatalf("repaired seq = %d, want 7", l.Seq())
	}
	appendN(t, l, 7, 3)
	l.Close()
	if got := replayAll(t, dir, 0); len(got) != 3 {
		t.Fatalf("after repair: %d records, want 3", len(got))
	}
}

// TestOpenAfterCrashDuringRotation: intact segments followed by a
// headerless newest segment (the crash-mid-rotation shape) must open,
// keep every intact record, and continue the sequence.
func TestOpenAfterCrashDuringRotation(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 0, 50)
	l.Close()
	// Fake the crash: a new segment file exists but its header never
	// landed (0 bytes, then a second run with a partial header).
	for _, partial := range [][]byte{nil, []byte(magic[:5])} {
		if err := os.WriteFile(filepath.Join(dir, segName(50)), partial, 0o644); err != nil {
			t.Fatal(err)
		}
		l2, err := Open(dir, Options{SegmentBytes: 128})
		if err != nil {
			t.Fatalf("open with headerless tail: %v", err)
		}
		if l2.Seq() != 50 {
			t.Fatalf("seq = %d, want 50", l2.Seq())
		}
		l2.Close()
	}
	if got := replayAll(t, dir, 0); len(got) != 50 {
		t.Fatalf("replayed %d, want 50", len(got))
	}
}

// TestDurableLSNAndSyncs: the durable horizon trails the tail until a
// commit, and Syncs counts the fsyncs that moved it.
func TestDurableLSNAndSyncs(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 0, 10)
	if d := l.DurableLSN(); d != 0 {
		t.Fatalf("durable before sync = %d, want 0", d)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if d := l.DurableLSN(); d != 10 {
		t.Fatalf("durable after sync = %d, want 10", d)
	}
	if s := l.Syncs(); s != 1 {
		t.Fatalf("syncs = %d, want 1", s)
	}
	// A sync with no debt is free.
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if s := l.Syncs(); s != 1 {
		t.Fatalf("debt-free sync fsynced: %d", s)
	}
	l.Close()
}

// TestEdgeCodecRoundTrip property-checks the payload codec over random
// edges, including negative vertex IDs and extreme timestamps.
func TestEdgeCodecRoundTrip(t *testing.T) {
	f := func(from, to int64, fl, tl, el int32, ts int64) bool {
		e := graph.Edge{
			From:      graph.VertexID(from),
			To:        graph.VertexID(to),
			FromLabel: graph.Label(fl),
			ToLabel:   graph.Label(tl),
			EdgeLabel: graph.Label(el),
			Time:      graph.Timestamp(ts),
		}
		got, err := decodeEdge(appendEdge(nil, e))
		return err == nil && reflect.DeepEqual(got, e)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestDecodeNeverPanics feeds random byte soup to the decoder: it must
// return an error or an edge, never panic or over-read.
func TestDecodeNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 2000; i++ {
		b := make([]byte, rng.Intn(40))
		rng.Read(b)
		_, _ = decodeEdge(b)
	}
}

// TestRandomCrashPoints simulates a crash after every possible byte
// length of a small log and checks that Open+Replay always yields an
// intact prefix of what was appended.
func TestRandomCrashPoints(t *testing.T) {
	master := t.TempDir()
	l, err := Open(master, Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 0, 8)
	l.Close()
	segs, _ := listSegments(master)
	full, err := os.ReadFile(filepath.Join(master, segs[0].name))
	if err != nil {
		t.Fatal(err)
	}

	// cut < len(magic) is the crash-during-rotation shape: a segment
	// without a complete header holds no records, and Open drops it.
	for cut := 0; cut <= len(full); cut++ {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, segName(0)), full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		got := replayAll(t, dir, 0)
		for i, e := range got {
			want := testEdge(int64(i))
			want.ID = graph.EdgeID(i)
			if e != want {
				t.Fatalf("cut %d: record %d corrupted: %+v", cut, i, e)
			}
		}
		l2, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("cut %d: open: %v", cut, err)
		}
		if l2.Seq() != int64(len(got)) {
			t.Fatalf("cut %d: seq %d != replayed %d", cut, l2.Seq(), len(got))
		}
		l2.Close()
	}
}
