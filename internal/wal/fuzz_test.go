package wal

import (
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"

	"timingsubg/internal/graph"
)

// FuzzReplaySegment writes arbitrary bytes as a segment file and drives
// the whole streaming read path over it: Replay either errors cleanly
// or yields decodable records — never panics — and Open either rejects
// the segment or repairs it (truncating the torn tail / dropping a
// headerless file) into a log that accepts appends and replays them.
func FuzzReplaySegment(f *testing.F) {
	// Seed with a valid 3-record segment.
	seed := []byte(magic)
	for i := int64(0); i < 3; i++ {
		payload := appendEdge(nil, testEdge(i))
		seed = appendUvarint(seed, uint64(len(payload)))
		seed = append(seed, payload...)
		seed = appendCRC(seed, payload)
	}
	f.Add(seed)
	f.Add([]byte(magic))
	f.Add([]byte("garbage"))

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, segName(0)), data, 0o644); err != nil {
			t.Skip()
		}
		var n int64
		end, rerr := Replay(dir, 0, func(seq int64, e graph.Edge) error {
			// The codec excludes the ID (replay assigns it), so compare
			// the ID-less projection.
			e.ID = 0
			if got, err := decodeEdge(appendEdge(nil, e)); err != nil || got != e {
				t.Fatalf("yielded edge does not round-trip: %+v", e)
			}
			n++
			return nil
		})
		// Open on the same bytes: reject or repair, never panic. A
		// repaired log continues exactly after the intact prefix and
		// stays append-able.
		l, err := Open(dir, Options{})
		if err != nil {
			return
		}
		if rerr == nil && l.Seq() != end {
			t.Fatalf("Open continued at %d, replay ended at %d", l.Seq(), end)
		}
		if _, err := l.Append(testEdge(n)); err != nil {
			t.Fatalf("append to repaired log: %v", err)
		}
		if err := l.Close(); err != nil {
			t.Fatalf("close repaired log: %v", err)
		}
		if end2, err := Replay(dir, 0, func(int64, graph.Edge) error { return nil }); err != nil || end2 != l.Seq() {
			t.Fatalf("replay after repair+append: end=%d err=%v, log %d", end2, err, l.Seq())
		}
	})
}

func appendUvarint(b []byte, v uint64) []byte {
	for v >= 0x80 {
		b = append(b, byte(v)|0x80)
		v >>= 7
	}
	return append(b, byte(v))
}

func appendCRC(b, payload []byte) []byte {
	crc := crc32.Checksum(payload, crcTable)
	return append(b, byte(crc), byte(crc>>8), byte(crc>>16), byte(crc>>24))
}
