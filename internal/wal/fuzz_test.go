package wal

import (
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"

	"timingsubg/internal/graph"
)

// FuzzReplaySegment writes arbitrary bytes as a segment file and checks
// that Replay either errors cleanly or yields decodable records — never
// panics — and that any records it does yield survive a re-encode.
func FuzzReplaySegment(f *testing.F) {
	// Seed with a valid 3-record segment.
	seed := []byte(magic)
	for i := int64(0); i < 3; i++ {
		payload := appendEdge(nil, testEdge(i))
		seed = appendUvarint(seed, uint64(len(payload)))
		seed = append(seed, payload...)
		seed = appendCRC(seed, payload)
	}
	f.Add(seed)
	f.Add([]byte(magic))
	f.Add([]byte("garbage"))

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, segName(0)), data, 0o644); err != nil {
			t.Skip()
		}
		_, _ = Replay(dir, 0, func(seq int64, e graph.Edge) error {
			// The codec excludes the ID (replay assigns it), so compare
			// the ID-less projection.
			e.ID = 0
			if got, err := decodeEdge(appendEdge(nil, e)); err != nil || got != e {
				t.Fatalf("yielded edge does not round-trip: %+v", e)
			}
			return nil
		})
	})
}

func appendUvarint(b []byte, v uint64) []byte {
	for v >= 0x80 {
		b = append(b, byte(v)|0x80)
		v >>= 7
	}
	return append(b, byte(v))
}

func appendCRC(b, payload []byte) []byte {
	crc := crc32.Checksum(payload, crcTable)
	return append(b, byte(crc), byte(crc>>8), byte(crc>>16), byte(crc>>24))
}
