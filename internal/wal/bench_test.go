package wal

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"timingsubg/internal/graph"
)

// BenchmarkAppend measures the no-fsync append path — the per-edge
// durability overhead a PersistentSearcher adds in its default
// configuration.
func BenchmarkAppend(b *testing.B) {
	l, err := Open(b.TempDir(), Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	e := graph.Edge{From: 12345, To: 67890, FromLabel: 3, ToLabel: 7, EdgeLabel: 1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Time = graph.Timestamp(i + 1)
		if _, err := l.Append(e); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAppendSynced measures per-record fsync durability (the
// SyncEvery=1 configuration) for contrast.
func BenchmarkAppendSynced(b *testing.B) {
	l, err := Open(b.TempDir(), Options{SyncEvery: 1})
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	e := graph.Edge{From: 12345, To: 67890, FromLabel: 3, ToLabel: 7, EdgeLabel: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Time = graph.Timestamp(i + 1)
		if _, err := l.Append(e); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGroupCommit contrasts the two ways to make every batch
// durable before acking it, under 1/4/16 concurrent feeders against a
// simulated 1ms-fsync disk (tmpfs fsyncs are too fast to expose the
// difference):
//
//   - perbatch: the pre-group-commit discipline — feeders serialize on
//     an external mutex and each batch pays its own fsync, so
//     fsyncs/batch is pinned at 1.0 and fsync latency is paid N times.
//   - group: feeders append concurrently with SyncEvery=1; committers
//     that pile up behind the in-flight fsync share the next one, so
//     fsyncs/batch drops below 1.0 as feeders grow.
//
// One benchmark iteration = one 16-edge batch made durable.
func BenchmarkGroupCommit(b *testing.B) {
	const batchLen = 16
	for _, mode := range []string{"perbatch", "group"} {
		for _, feeders := range []int{1, 4, 16} {
			b.Run(fmt.Sprintf("%s/feeders-%d", mode, feeders), func(b *testing.B) {
				opts := Options{OpenFile: slowOpen(time.Millisecond)}
				if mode == "group" {
					opts.SyncEvery = 1
				}
				l, err := Open(b.TempDir(), opts)
				if err != nil {
					b.Fatal(err)
				}
				var serial sync.Mutex
				var next atomic.Int64
				var wg sync.WaitGroup
				errs := make(chan error, feeders)
				b.ResetTimer()
				for g := 0; g < feeders; g++ {
					wg.Add(1)
					go func() {
						defer wg.Done()
						batch := make([]graph.Edge, batchLen)
						for {
							i := next.Add(1)
							if i > int64(b.N) {
								return
							}
							for j := range batch {
								batch[j] = testEdge(i*batchLen + int64(j))
							}
							var err error
							if mode == "perbatch" {
								serial.Lock()
								if _, _, err = l.AppendBatch(batch); err == nil {
									err = l.Sync()
								}
								serial.Unlock()
							} else {
								_, _, err = l.AppendBatch(batch)
							}
							if err != nil {
								errs <- err
								return
							}
						}
					}()
				}
				wg.Wait()
				b.StopTimer()
				close(errs)
				for err := range errs {
					b.Fatal(err)
				}
				b.ReportMetric(float64(l.Syncs())/float64(b.N), "fsyncs/batch")
				b.ReportMetric(float64(b.N*batchLen)/b.Elapsed().Seconds(), "edges/s")
				if err := l.Close(); err != nil {
					b.Fatal(err)
				}
			})
		}
	}
}

// BenchmarkReplay measures recovery replay speed over a 100k-record log.
func BenchmarkReplay(b *testing.B) {
	dir := b.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		b.Fatal(err)
	}
	e := graph.Edge{From: 1, To: 2, FromLabel: 3, ToLabel: 4}
	const n = 100_000
	for i := 0; i < n; i++ {
		e.Time = graph.Timestamp(i + 1)
		if _, err := l.Append(e); err != nil {
			b.Fatal(err)
		}
	}
	l.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cnt := 0
		if _, err := Replay(dir, 0, func(int64, graph.Edge) error { cnt++; return nil }); err != nil {
			b.Fatal(err)
		}
		if cnt != n {
			b.Fatalf("replayed %d, want %d", cnt, n)
		}
	}
}
