package wal

import (
	"testing"

	"timingsubg/internal/graph"
)

// BenchmarkAppend measures the no-fsync append path — the per-edge
// durability overhead a PersistentSearcher adds in its default
// configuration.
func BenchmarkAppend(b *testing.B) {
	l, err := Open(b.TempDir(), Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	e := graph.Edge{From: 12345, To: 67890, FromLabel: 3, ToLabel: 7, EdgeLabel: 1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Time = graph.Timestamp(i + 1)
		if _, err := l.Append(e); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAppendSynced measures per-record fsync durability (the
// SyncEvery=1 configuration) for contrast.
func BenchmarkAppendSynced(b *testing.B) {
	l, err := Open(b.TempDir(), Options{SyncEvery: 1})
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	e := graph.Edge{From: 12345, To: 67890, FromLabel: 3, ToLabel: 7, EdgeLabel: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Time = graph.Timestamp(i + 1)
		if _, err := l.Append(e); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReplay measures recovery replay speed over a 100k-record log.
func BenchmarkReplay(b *testing.B) {
	dir := b.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		b.Fatal(err)
	}
	e := graph.Edge{From: 1, To: 2, FromLabel: 3, ToLabel: 4}
	const n = 100_000
	for i := 0; i < n; i++ {
		e.Time = graph.Timestamp(i + 1)
		if _, err := l.Append(e); err != nil {
			b.Fatal(err)
		}
	}
	l.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cnt := 0
		if _, err := Replay(dir, 0, func(int64, graph.Edge) error { cnt++; return nil }); err != nil {
			b.Fatal(err)
		}
		if cnt != n {
			b.Fatalf("replayed %d, want %d", cnt, n)
		}
	}
}
