package wal

import (
	"errors"
	"os"
	"sync"
	"sync/atomic"
	"testing"

	"timingsubg/internal/graph"
)

// Fault injection for the append path: a filesystem shim that tears a
// write mid-buffer (the on-disk shape of a crash or I/O error in the
// middle of an AppendBatch) and the recovery assertions that follow —
// the log's cursor reflects exactly the acknowledged records, reopen
// truncates the torn tail to the last complete record, and replay
// yields every surviving record intact.

// errInjectedWrite marks a shim-induced failure.
var errInjectedWrite = errors.New("injected torn write")

// tornFile wraps a real segment file and enforces a shared byte budget:
// the write that would exceed it lands only partially (a torn write)
// and fails; every later write fails outright.
type tornFile struct {
	f      File
	budget *int64
}

func tornOpen(budget *int64) OpenFileFunc {
	return func(name string, flag int, perm os.FileMode) (File, error) {
		f, err := os.OpenFile(name, flag, perm)
		if err != nil {
			return nil, err
		}
		return &tornFile{f: f, budget: budget}, nil
	}
}

func (t *tornFile) Write(p []byte) (int, error) {
	if *t.budget <= 0 {
		return 0, errInjectedWrite
	}
	if int64(len(p)) > *t.budget {
		n, _ := t.f.Write(p[:*t.budget])
		*t.budget = 0
		return n, errInjectedWrite
	}
	*t.budget -= int64(len(p))
	return t.f.Write(p)
}

func (t *tornFile) Sync() error                               { return t.f.Sync() }
func (t *tornFile) Close() error                              { return t.f.Close() }
func (t *tornFile) Truncate(size int64) error                 { return t.f.Truncate(size) }
func (t *tornFile) Seek(off int64, whence int) (int64, error) { return t.f.Seek(off, whence) }

func TestAppendBatchTornWriteRecovery(t *testing.T) {
	dir := t.TempDir()
	budget := int64(600) // segment magic + a few dozen records, then tear
	l, err := Open(dir, Options{SyncEvery: 1, OpenFile: tornOpen(&budget)})
	if err != nil {
		t.Fatal(err)
	}

	var acked int64
	var failedAt int64 = -1
	for b := 0; b < 64 && failedAt < 0; b++ {
		batch := make([]graph.Edge, 16)
		for i := range batch {
			batch[i] = testEdge(acked + int64(len(batch)<<8) + int64(i))
			batch[i].Time = graph.Timestamp(acked) + graph.Timestamp(i) + 1
		}
		_, n, err := l.AppendBatch(batch)
		acked += int64(n)
		if err != nil {
			if !errors.Is(err, errInjectedWrite) {
				t.Fatalf("AppendBatch failed with %v, want injected fault", err)
			}
			if n == len(batch) {
				t.Fatal("injected fault reported but whole batch acknowledged")
			}
			failedAt = acked
		}
	}
	if failedAt < 0 {
		t.Fatal("budget never exhausted — fault not exercised")
	}
	// The cursor must reflect exactly the acknowledged records: the
	// caller keeps engine state aligned with it.
	if l.Seq() != acked {
		t.Fatalf("post-fault Seq = %d, want %d acknowledged", l.Seq(), acked)
	}

	// Crash (no Close). Reopen through the real filesystem: the torn
	// tail is truncated to the last complete record.
	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen after torn write: %v", err)
	}
	defer l2.Close()
	// Every acknowledged record is complete on disk (SyncEvery: 1 made
	// each acked batch durable); the torn chunk may additionally have
	// landed a prefix of complete records that were never acknowledged.
	if l2.Seq() < acked {
		t.Fatalf("recovered Seq = %d, lost acknowledged records (acked %d)", l2.Seq(), acked)
	}
	var replayed int64
	end, err := Replay(dir, 0, func(seq int64, e graph.Edge) error {
		if seq != replayed {
			t.Fatalf("replay gap: got seq %d, want %d", seq, replayed)
		}
		replayed++
		return nil
	})
	if err != nil {
		t.Fatalf("replay after torn write: %v", err)
	}
	if end != l2.Seq() || replayed != l2.Seq() {
		t.Fatalf("replay yielded %d records to %d, log at %d", replayed, end, l2.Seq())
	}

	// The reopened log keeps working: appends continue at the recovered
	// cursor and survive another replay.
	if seq, err := l2.Append(testEdge(9999)); err != nil || seq != replayed {
		t.Fatalf("append after recovery = (%d, %v), want seq %d", seq, err, replayed)
	}
	if err := l2.Sync(); err != nil {
		t.Fatal(err)
	}
	if end, err := Replay(dir, 0, func(int64, graph.Edge) error { return nil }); err != nil || end != replayed+1 {
		t.Fatalf("replay after post-recovery append = (%d, %v)", end, err)
	}
}

// TestAppendAfterTornWriteSticky: once a write tears, the in-memory
// cursor no longer matches the file, so every later append, batch and
// sync must refuse with the original fault (not silently write after
// the torn bytes, which would read back as interior corruption) until
// a reopen rescans and truncates the tail.
func TestAppendAfterTornWriteSticky(t *testing.T) {
	dir := t.TempDir()
	budget := int64(120)
	l, err := Open(dir, Options{OpenFile: tornOpen(&budget)})
	if err != nil {
		t.Fatal(err)
	}
	var acked int64
	for i := 0; i < 64; i++ {
		if _, err := l.Append(testEdge(int64(i))); err != nil {
			if !errors.Is(err, errInjectedWrite) {
				t.Fatalf("fault surfaced as %v", err)
			}
			break
		}
		acked++
	}
	if acked == 64 {
		t.Fatal("budget never exhausted")
	}
	// Every write-path entry point is now closed, each still naming the
	// original fault, and none moves the cursor.
	if _, err := l.Append(testEdge(500)); !errors.Is(err, errInjectedWrite) {
		t.Fatalf("Append after torn write: %v, want sticky injected fault", err)
	}
	if _, n, err := l.AppendBatch([]graph.Edge{testEdge(501), testEdge(502)}); !errors.Is(err, errInjectedWrite) || n != 0 {
		t.Fatalf("AppendBatch after torn write: n=%d err=%v, want sticky injected fault", n, err)
	}
	if err := l.Sync(); !errors.Is(err, errInjectedWrite) {
		t.Fatalf("Sync after torn write: %v, want sticky injected fault", err)
	}
	if err := l.SkipTo(1000); !errors.Is(err, errInjectedWrite) {
		t.Fatalf("SkipTo after torn write: %v, want sticky injected fault", err)
	}
	if l.Seq() != acked {
		t.Fatalf("failed ops moved the cursor: %d, want %d", l.Seq(), acked)
	}
	// Close is clean (nothing more to flush) and reopen fully recovers.
	if err := l.Close(); err != nil {
		t.Fatalf("close of failed log: %v", err)
	}
	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if l2.Seq() < acked {
		t.Fatalf("recovered Seq %d < acked %d", l2.Seq(), acked)
	}
	appendN(t, l2, l2.Seq(), 5)
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	var prev int64 = -1
	if _, err := Replay(dir, 0, func(seq int64, e graph.Edge) error {
		if seq != prev+1 {
			t.Fatalf("replay gap at %d after %d", seq, prev)
		}
		prev = seq
		return nil
	}); err != nil {
		t.Fatalf("replay after recovery: %v", err)
	}
}

// failSyncFile fails the first n fsyncs, then succeeds.
type failSyncFile struct {
	f     File
	fails *int
}

var errInjectedSync = errors.New("injected fsync failure")

func failSyncOpen(fails *int) OpenFileFunc {
	return func(name string, flag int, perm os.FileMode) (File, error) {
		f, err := os.OpenFile(name, flag, perm)
		if err != nil {
			return nil, err
		}
		return &failSyncFile{f: f, fails: fails}, nil
	}
}

func (s *failSyncFile) Write(p []byte) (int, error) { return s.f.Write(p) }
func (s *failSyncFile) Seek(o int64, w int) (int64, error) {
	return s.f.Seek(o, w)
}
func (s *failSyncFile) Close() error           { return s.f.Close() }
func (s *failSyncFile) Truncate(n int64) error { return s.f.Truncate(n) }
func (s *failSyncFile) Sync() error {
	if *s.fails > 0 {
		*s.fails--
		return errInjectedSync
	}
	return s.f.Sync()
}

// TestFailedSyncKeepsDebt is the regression test for the
// cadence-debt-reset bug: a failed fsync must NOT clear the durability
// debt — the next append's cadence commit retries and, on success,
// covers the earlier records too.
func TestFailedSyncKeepsDebt(t *testing.T) {
	dir := t.TempDir()
	fails := 1
	l, err := Open(dir, Options{SyncEvery: 1, OpenFile: failSyncOpen(&fails)})
	if err != nil {
		t.Fatal(err)
	}
	// First append: the cadence fsync fails; the record is written but
	// not durable, and the failure is reported.
	if _, err := l.Append(testEdge(0)); !errors.Is(err, errInjectedSync) {
		t.Fatalf("append with failing fsync: %v, want injected failure", err)
	}
	if l.Seq() != 1 {
		t.Fatalf("seq = %d, want 1 (record landed)", l.Seq())
	}
	if d := l.DurableLSN(); d != 0 {
		t.Fatalf("durable = %d after failed fsync, want 0 (debt retained)", d)
	}
	// Second append: fsync now works and must cover BOTH records —
	// durability debt from the failed fsync was not forgotten.
	if _, err := l.Append(testEdge(1)); err != nil {
		t.Fatalf("append after fsync recovered: %v", err)
	}
	if d := l.DurableLSN(); d != 2 {
		t.Fatalf("durable = %d, want 2 (retried fsync covers the debt)", d)
	}
	// Explicit Sync with zero debt is a no-op, not another fsync.
	syncs := l.Syncs()
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if l.Syncs() != syncs {
		t.Fatal("debt-free Sync performed an fsync")
	}
	l.Close()
}

// TestTornWriteUnderConcurrentFeeders extends the torn-write fault
// suite to the group-commit path: concurrent appenders against a
// tearing disk, per-record durability. Every acknowledged append must
// survive reopen (writes are serialized, so an acked record implies
// all records below it landed), and the survivors replay gap-free.
func TestTornWriteUnderConcurrentFeeders(t *testing.T) {
	dir := t.TempDir()
	budget := int64(4096)
	l, err := Open(dir, Options{SyncEvery: 1, SegmentBytes: 1024, OpenFile: tornOpen(&budget)})
	if err != nil {
		t.Fatal(err)
	}
	const feeders = 4
	var wg sync.WaitGroup
	var maxAcked atomic.Int64
	maxAcked.Store(-1)
	var sawFault atomic.Bool
	for g := 0; g < feeders; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				seq, err := l.Append(testEdge(int64(g*1000 + i)))
				if err != nil {
					if !errors.Is(err, errInjectedWrite) {
						t.Errorf("feeder %d: %v", g, err)
					}
					sawFault.Store(true)
					return
				}
				for {
					cur := maxAcked.Load()
					if seq <= cur || maxAcked.CompareAndSwap(cur, seq) {
						break
					}
				}
			}
		}(g)
	}
	wg.Wait()
	if !sawFault.Load() {
		t.Fatal("budget never exhausted — fault not exercised")
	}
	acked := maxAcked.Load() + 1

	// Crash (no Close) and reopen on the real filesystem.
	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen after concurrent torn write: %v", err)
	}
	defer l2.Close()
	if l2.Seq() < acked {
		t.Fatalf("recovered Seq = %d, lost acknowledged records (acked through %d)", l2.Seq(), acked)
	}
	var prev int64 = -1
	end, err := Replay(dir, 0, func(seq int64, e graph.Edge) error {
		if seq != prev+1 {
			t.Fatalf("replay gap at %d after %d", seq, prev)
		}
		prev = seq
		return nil
	})
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if end != l2.Seq() {
		t.Fatalf("replay ended at %d, log at %d", end, l2.Seq())
	}
}

// TestAppendTornWriteSingle is the per-record variant: a torn single
// Append must leave the cursor unmoved and the tail recoverable.
func TestAppendTornWriteSingle(t *testing.T) {
	dir := t.TempDir()
	budget := int64(64)
	l, err := Open(dir, Options{OpenFile: tornOpen(&budget)})
	if err != nil {
		t.Fatal(err)
	}
	var acked int64
	for i := 0; i < 64; i++ {
		if _, err := l.Append(testEdge(int64(i))); err != nil {
			if !errors.Is(err, errInjectedWrite) {
				t.Fatalf("Append failed with %v", err)
			}
			break
		}
		acked++
	}
	if acked == 64 {
		t.Fatal("budget never exhausted")
	}
	if l.Seq() != acked {
		t.Fatalf("Seq = %d, want %d", l.Seq(), acked)
	}
	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer l2.Close()
	if l2.Seq() < acked {
		t.Fatalf("recovered Seq %d < acked %d", l2.Seq(), acked)
	}
}
