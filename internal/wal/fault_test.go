package wal

import (
	"errors"
	"os"
	"testing"

	"timingsubg/internal/graph"
)

// Fault injection for the append path: a filesystem shim that tears a
// write mid-buffer (the on-disk shape of a crash or I/O error in the
// middle of an AppendBatch) and the recovery assertions that follow —
// the log's cursor reflects exactly the acknowledged records, reopen
// truncates the torn tail to the last complete record, and replay
// yields every surviving record intact.

// errInjectedWrite marks a shim-induced failure.
var errInjectedWrite = errors.New("injected torn write")

// tornFile wraps a real segment file and enforces a shared byte budget:
// the write that would exceed it lands only partially (a torn write)
// and fails; every later write fails outright.
type tornFile struct {
	f      File
	budget *int64
}

func tornOpen(budget *int64) OpenFileFunc {
	return func(name string, flag int, perm os.FileMode) (File, error) {
		f, err := os.OpenFile(name, flag, perm)
		if err != nil {
			return nil, err
		}
		return &tornFile{f: f, budget: budget}, nil
	}
}

func (t *tornFile) Write(p []byte) (int, error) {
	if *t.budget <= 0 {
		return 0, errInjectedWrite
	}
	if int64(len(p)) > *t.budget {
		n, _ := t.f.Write(p[:*t.budget])
		*t.budget = 0
		return n, errInjectedWrite
	}
	*t.budget -= int64(len(p))
	return t.f.Write(p)
}

func (t *tornFile) Sync() error                               { return t.f.Sync() }
func (t *tornFile) Close() error                              { return t.f.Close() }
func (t *tornFile) Truncate(size int64) error                 { return t.f.Truncate(size) }
func (t *tornFile) Seek(off int64, whence int) (int64, error) { return t.f.Seek(off, whence) }

func TestAppendBatchTornWriteRecovery(t *testing.T) {
	dir := t.TempDir()
	budget := int64(600) // segment magic + a few dozen records, then tear
	l, err := Open(dir, Options{SyncEvery: 1, OpenFile: tornOpen(&budget)})
	if err != nil {
		t.Fatal(err)
	}

	var acked int64
	var failedAt int64 = -1
	for b := 0; b < 64 && failedAt < 0; b++ {
		batch := make([]graph.Edge, 16)
		for i := range batch {
			batch[i] = testEdge(acked + int64(len(batch)<<8) + int64(i))
			batch[i].Time = graph.Timestamp(acked) + graph.Timestamp(i) + 1
		}
		_, n, err := l.AppendBatch(batch)
		acked += int64(n)
		if err != nil {
			if !errors.Is(err, errInjectedWrite) {
				t.Fatalf("AppendBatch failed with %v, want injected fault", err)
			}
			if n == len(batch) {
				t.Fatal("injected fault reported but whole batch acknowledged")
			}
			failedAt = acked
		}
	}
	if failedAt < 0 {
		t.Fatal("budget never exhausted — fault not exercised")
	}
	// The cursor must reflect exactly the acknowledged records: the
	// caller keeps engine state aligned with it.
	if l.Seq() != acked {
		t.Fatalf("post-fault Seq = %d, want %d acknowledged", l.Seq(), acked)
	}

	// Crash (no Close). Reopen through the real filesystem: the torn
	// tail is truncated to the last complete record.
	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen after torn write: %v", err)
	}
	defer l2.Close()
	// Every acknowledged record is complete on disk (SyncEvery: 1 made
	// each acked batch durable); the torn chunk may additionally have
	// landed a prefix of complete records that were never acknowledged.
	if l2.Seq() < acked {
		t.Fatalf("recovered Seq = %d, lost acknowledged records (acked %d)", l2.Seq(), acked)
	}
	var replayed int64
	end, err := Replay(dir, 0, func(seq int64, e graph.Edge) error {
		if seq != replayed {
			t.Fatalf("replay gap: got seq %d, want %d", seq, replayed)
		}
		replayed++
		return nil
	})
	if err != nil {
		t.Fatalf("replay after torn write: %v", err)
	}
	if end != l2.Seq() || replayed != l2.Seq() {
		t.Fatalf("replay yielded %d records to %d, log at %d", replayed, end, l2.Seq())
	}

	// The reopened log keeps working: appends continue at the recovered
	// cursor and survive another replay.
	if seq, err := l2.Append(testEdge(9999)); err != nil || seq != replayed {
		t.Fatalf("append after recovery = (%d, %v), want seq %d", seq, err, replayed)
	}
	if err := l2.Sync(); err != nil {
		t.Fatal(err)
	}
	if end, err := Replay(dir, 0, func(int64, graph.Edge) error { return nil }); err != nil || end != replayed+1 {
		t.Fatalf("replay after post-recovery append = (%d, %v)", end, err)
	}
}

// TestAppendTornWriteSingle is the per-record variant: a torn single
// Append must leave the cursor unmoved and the tail recoverable.
func TestAppendTornWriteSingle(t *testing.T) {
	dir := t.TempDir()
	budget := int64(64)
	l, err := Open(dir, Options{OpenFile: tornOpen(&budget)})
	if err != nil {
		t.Fatal(err)
	}
	var acked int64
	for i := 0; i < 64; i++ {
		if _, err := l.Append(testEdge(int64(i))); err != nil {
			if !errors.Is(err, errInjectedWrite) {
				t.Fatalf("Append failed with %v", err)
			}
			break
		}
		acked++
	}
	if acked == 64 {
		t.Fatal("budget never exhausted")
	}
	if l.Seq() != acked {
		t.Fatalf("Seq = %d, want %d", l.Seq(), acked)
	}
	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer l2.Close()
	if l2.Seq() < acked {
		t.Fatalf("recovered Seq %d < acked %d", l2.Seq(), acked)
	}
}
