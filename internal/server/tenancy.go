package server

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"timingsubg/client"
	"timingsubg/internal/tenant"
)

// The multi-tenant control plane. Tenancy is enabled by configuring a
// tenant.Registry (Config.Tenants); with none configured every request
// resolves to the nil tenant, which admits everything and owns the
// whole namespace — the single-tenant server, byte-identical on the
// wire to versions that predate tenancy.
//
// With tenancy enabled, every query lives under an internal roster
// name "<tenant>:<wire name>". Handlers translate at the boundary in
// both directions (never by string-parsing internal names — the
// s.queries map is the source of truth), so two tenants can both own a
// query named "frauds" without colliding, and no tenant can list,
// subscribe to, delete or even probe the existence of another's
// queries: a foreign name simply does not resolve inside the caller's
// namespace. The admin key addresses the roster verbatim instead,
// which is also how pre-tenancy durable queries (no owner recorded)
// remain manageable after tenancy is switched on.

// bearerKey extracts the Authorization: Bearer credential, or "".
func bearerKey(r *http.Request) string {
	const scheme = "Bearer "
	h := r.Header.Get("Authorization")
	if len(h) > len(scheme) && strings.EqualFold(h[:len(scheme)], scheme) {
		return strings.TrimSpace(h[len(scheme):])
	}
	return ""
}

// isAdmin reports whether key is the configured admin key. The
// comparison is by SHA-256 digest: the attacker cannot choose the
// digest of an unknown key, so digest equality leaks nothing useful
// through timing.
func (s *Server) isAdmin(key string) bool {
	return s.adminKey != "" && key != "" &&
		sha256.Sum256([]byte(key)) == sha256.Sum256([]byte(s.adminKey))
}

// authTenant resolves the request's tenant, writing the error response
// (401 with WWW-Authenticate, or 403 for an insufficient role) and
// returning ok=false when the request must not proceed. The nil tenant
// — returned when tenancy is disabled or the admin key is presented —
// admits everything and addresses the roster verbatim.
func (s *Server) authTenant(w http.ResponseWriter, r *http.Request, need tenant.Role) (*tenant.Tenant, bool) {
	if s.tenants == nil {
		return nil, true
	}
	key := bearerKey(r)
	if s.isAdmin(key) {
		return nil, true
	}
	if key == "" {
		// Default-tenant compatibility: unauthenticated requests may map
		// to a configured tenant, with full access — the upgrade path for
		// deployments that turn tenancy on under existing producers.
		if t := s.tenants.Anonymous(); t != nil {
			return t, true
		}
		w.Header().Set("WWW-Authenticate", `Bearer realm="tsserved"`)
		httpError(w, http.StatusUnauthorized, "missing API key")
		return nil, false
	}
	t, role, ok := s.tenants.Resolve(key)
	if !ok {
		w.Header().Set("WWW-Authenticate", `Bearer realm="tsserved"`)
		httpError(w, http.StatusUnauthorized, "unknown API key")
		return nil, false
	}
	if need == tenant.RoleWrite && role != tenant.RoleWrite {
		httpError(w, http.StatusForbidden, "API key of tenant %q is read-only", t.Name())
		return nil, false
	}
	return t, true
}

// scopedName maps a request's wire query name into the internal roster
// namespace: a tenant owns the "<tenant>:" prefix; the nil tenant
// (tenancy disabled, or admin) addresses the roster verbatim.
func (s *Server) scopedName(t *tenant.Tenant, wire string) string {
	if s.tenants == nil || t == nil {
		return wire
	}
	return t.Name() + ":" + wire
}

// rateLimited answers 429. A positive wait becomes a Retry-After
// header in whole seconds, rounded up — advertising an earlier retry
// than the bucket can honor would teach clients to hammer.
func rateLimited(w http.ResponseWriter, wait time.Duration, format string, args ...any) {
	if wait > 0 {
		secs := int64((wait + time.Second - 1) / time.Second)
		w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
	}
	httpError(w, http.StatusTooManyRequests, format, args...)
}

// countingReader counts bytes actually pulled off the wire, so that
// when edge admission aborts an ingest mid-body the tenant's byte
// accounting reflects what was read, not the Content-Length the
// request advertised.
type countingReader struct {
	r io.ReadCloser
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

func (c *countingReader) Close() error { return c.r.Close() }

// requireAdmin gates the /tenants admin API.
func (s *Server) requireAdmin(w http.ResponseWriter, r *http.Request) bool {
	if s.tenants == nil {
		httpError(w, http.StatusNotFound, "tenancy disabled (no tenants configured)")
		return false
	}
	if s.adminKey == "" {
		httpError(w, http.StatusForbidden, "tenant admin API disabled (no admin key configured)")
		return false
	}
	if !s.isAdmin(bearerKey(r)) {
		w.Header().Set("WWW-Authenticate", `Bearer realm="tsserved-admin"`)
		httpError(w, http.StatusUnauthorized, "admin key required")
		return false
	}
	return true
}

// tenantSpec converts the wire form of a tenant declaration.
func tenantSpec(w client.TenantSpec) tenant.Spec {
	spec := tenant.Spec{
		Name: w.Name,
		Limits: tenant.Limits{
			EdgesPerSec:      w.Limits.EdgesPerSec,
			EdgeBurst:        w.Limits.EdgeBurst,
			BatchesPerSec:    w.Limits.BatchesPerSec,
			BatchBurst:       w.Limits.BatchBurst,
			MaxQueries:       w.Limits.MaxQueries,
			MaxSubscriptions: w.Limits.MaxSubscriptions,
			Weight:           w.Limits.Weight,
		},
	}
	for _, k := range w.Keys {
		spec.Keys = append(spec.Keys, tenant.KeySpec{Key: k.Key, Role: tenant.Role(k.Role)})
	}
	return spec
}

// tenantInfo is a tenant's admin-facing snapshot: declared limits plus
// live usage (keys are never echoed back).
func tenantInfo(t *tenant.Tenant) client.TenantInfo {
	l, u := t.Limits(), t.Usage()
	return client.TenantInfo{
		Name: t.Name(),
		Limits: client.TenantLimits{
			EdgesPerSec:      l.EdgesPerSec,
			EdgeBurst:        l.EdgeBurst,
			BatchesPerSec:    l.BatchesPerSec,
			BatchBurst:       l.BatchBurst,
			MaxQueries:       l.MaxQueries,
			MaxSubscriptions: l.MaxSubscriptions,
			Weight:           l.Weight,
		},
		Usage: client.TenantUsage{
			AdmittedEdges:   u.AdmittedEdges,
			RejectedEdges:   u.RejectedEdges,
			AdmittedBatches: u.AdmittedBatches,
			RejectedBatches: u.RejectedBatches,
			IngestBytes:     u.IngestBytes,
			Queries:         u.Queries,
			Subscriptions:   u.Subscriptions,
		},
	}
}

// handleCreateTenant registers a tenant at runtime (admin API). In
// durable mode the spec is persisted beside the WAL, so the tenant —
// keys included — survives a restart even if the static tenants file
// never learns about it.
func (s *Server) handleCreateTenant(w http.ResponseWriter, r *http.Request) {
	if !s.requireAdmin(w, r) {
		return
	}
	var spec client.TenantSpec
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&spec); err != nil {
		httpError(w, http.StatusBadRequest, "bad tenant spec: %v", err)
		return
	}
	t, err := s.tenants.Create(tenantSpec(spec))
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.sched.SetWeight(t.Name(), t.Weight())
	if s.stateDir != "" {
		if err := saveTenantFile(filepath.Join(s.stateDir, "tenants"), spec); err != nil {
			// The tenant is live but would not survive a restart; that is
			// a server error the admin must see.
			httpError(w, http.StatusInternalServerError, "tenant %q registered but not persisted: %v", t.Name(), err)
			return
		}
	}
	writeJSON(w, http.StatusCreated, tenantInfo(t))
}

// handleListTenants lists every tenant with limits and usage (admin
// API).
func (s *Server) handleListTenants(w http.ResponseWriter, r *http.Request) {
	if !s.requireAdmin(w, r) {
		return
	}
	names := s.tenants.Names()
	out := client.TenantList{Tenants: make([]client.TenantInfo, 0, len(names))}
	for _, name := range names {
		if t, ok := s.tenants.Get(name); ok {
			out.Tenants = append(out.Tenants, tenantInfo(t))
		}
	}
	writeJSON(w, http.StatusOK, out)
}

// handleTenantStats serves a tenant's slice of GET /stats: its usage
// counters, its group aggregate (summed engine counters plus the
// group-wide detection histogram, which survives query retirement) and
// its per-query snapshots keyed by wire name. The registry ?metric=
// facility stays admin-only — arbitrary metrics are not tenant-scoped.
func (s *Server) handleTenantStats(w http.ResponseWriter, r *http.Request, t *tenant.Tenant) {
	if r.URL.Query().Get("metric") != "" {
		httpError(w, http.StatusForbidden, "?metric= requires the admin key")
		return
	}
	var payload map[string]any
	err := s.doAs(r.Context(), t, func() {
		st := s.fl.Stats()
		payload = map[string]any{
			"tenant": t.Name(),
			"usage":  t.Usage(),
		}
		if g, ok := st.Groups[t.Name()]; ok {
			payload["stats"] = clientStats(g)
		}
		prefix := t.Name() + ":"
		queries := make(map[string]client.EngineStats)
		for name, qs := range st.Queries {
			if strings.HasPrefix(name, prefix) {
				queries[strings.TrimPrefix(name, prefix)] = clientStats(qs)
			}
		}
		if len(queries) > 0 {
			payload["queries"] = queries
		}
	})
	if err != nil {
		httpError(w, http.StatusServiceUnavailable, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, payload)
}

// Runtime-created tenants are durable alongside the WAL: each one is a
// JSON file <dir>/<name>.json holding the wire-format TenantSpec.
// Static tenants-file entries are NOT written here — the file an
// operator manages stays the source of truth for the tenants it names.

const tenantFileSuffix = ".json"

// saveTenantFile atomically persists one runtime tenant registration.
// Specs carry credentials, so files are not group- or world-readable.
func saveTenantFile(dir string, spec client.TenantSpec) error {
	if err := os.MkdirAll(dir, 0o700); err != nil {
		return fmt.Errorf("server: tenant registry mkdir: %w", err)
	}
	data, err := json.MarshalIndent(spec, "", "  ")
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, "tenant-*.tmp")
	if err != nil {
		return fmt.Errorf("server: tenant file temp: %w", err)
	}
	tmpName := tmp.Name()
	if err := tmp.Chmod(0o600); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("server: tenant file chmod: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("server: tenant file write: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("server: tenant file sync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("server: tenant file close: %w", err)
	}
	if err := os.Rename(tmpName, filepath.Join(dir, spec.Name+tenantFileSuffix)); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("server: tenant file rename: %w", err)
	}
	return nil
}

// loadTenants restores runtime-created tenants from dir into reg,
// skipping names the registry already has (the operator's tenants file
// wins over a stale persisted spec). A missing directory means none
// were ever created.
func loadTenants(dir string, reg *tenant.Registry, sched *tenant.Sched[op]) error {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return fmt.Errorf("server: read tenant registry %s: %w", dir, err)
	}
	names := make([]string, 0, len(entries))
	for _, ent := range entries {
		if !ent.IsDir() && strings.HasSuffix(ent.Name(), tenantFileSuffix) {
			names = append(names, ent.Name())
		}
	}
	sort.Strings(names)
	for _, name := range names {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return fmt.Errorf("server: read tenant file %s: %w", name, err)
		}
		var spec client.TenantSpec
		if err := json.Unmarshal(data, &spec); err != nil {
			return fmt.Errorf("server: parse tenant file %s: %w", name, err)
		}
		if _, exists := reg.Get(spec.Name); exists {
			continue
		}
		t, err := reg.Create(tenantSpec(spec))
		if err != nil {
			return fmt.Errorf("server: restore tenant file %s: %w", name, err)
		}
		sched.SetWeight(t.Name(), t.Weight())
	}
	return nil
}
