package server_test

import (
	"context"
	"errors"
	"io"
	"net"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"timingsubg"
	"timingsubg/client"
	"timingsubg/internal/server"
)

// pingPong is a two-edge pattern A→B then B→A, strictly ordered, so a
// match needs window state spanning both edges.
const pingPong = `
v 0 N
v 1 N
e 0 1 ping
e 1 0 pong
o 0 < 1
`

func testCtx(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	t.Cleanup(cancel)
	return ctx
}

// edge builds a wire edge with server-assigned time.
func edge(from, to int64, label string) client.Edge {
	return client.Edge{From: from, To: to, FromLabel: "N", ToLabel: "N", Label: label}
}

// recvMatch waits for one match event or fails.
func recvMatch(t *testing.T, sub *client.Subscription) client.MatchEvent {
	t.Helper()
	select {
	case m, ok := <-sub.Events:
		if !ok {
			t.Fatalf("subscription closed early (err: %v)", sub.Err())
		}
		return m
	case <-time.After(10 * time.Second):
		t.Fatal("timed out waiting for a match event")
	}
	panic("unreachable")
}

func TestServerEndToEnd(t *testing.T) {
	srv := server.New(server.Config{Routed: true})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	c := client.New(ts.URL, nil)
	ctx := testCtx(t)

	if err := c.Health(ctx); err != nil {
		t.Fatalf("healthz: %v", err)
	}

	// Registration validation.
	if err := c.AddQuery(ctx, client.QueryRequest{Name: "bad", Text: "nonsense", Window: 10}); err == nil {
		t.Fatal("registering an unparsable query must fail")
	}
	if err := c.AddQuery(ctx, client.QueryRequest{Name: "bad", Text: pingPong, Window: 0}); err == nil {
		t.Fatal("registering with a non-positive window must fail")
	}
	if err := c.AddQuery(ctx, client.QueryRequest{Name: "pp", Text: pingPong, Window: 100}); err != nil {
		t.Fatalf("register: %v", err)
	}
	if err := c.AddQuery(ctx, client.QueryRequest{Name: "pp", Text: pingPong, Window: 100}); err == nil {
		t.Fatal("duplicate registration must fail")
	} else if !strings.Contains(err.Error(), "409") {
		t.Fatalf("duplicate registration: want 409, got %v", err)
	}
	list, err := c.Queries(ctx)
	if err != nil {
		t.Fatalf("list queries: %v", err)
	}
	if len(list.Queries) != 1 || list.Queries[0].Name != "pp" || list.Queries[0].Window != 100 {
		t.Fatalf("query list = %+v", list)
	}

	// Subscribing to an unknown query 404s.
	if _, err := c.Subscribe(ctx, "nope"); err == nil {
		t.Fatal("subscribing to an unknown query must fail")
	}
	sub, err := c.Subscribe(ctx, "pp")
	if err != nil {
		t.Fatalf("subscribe: %v", err)
	}
	defer sub.Close()

	// Ingest: a bad JSON line and an out-of-order line are rejected
	// individually; the rest of the batch lands and completes a match.
	res, err := c.Ingest(ctx, []client.Edge{
		edge(1, 2, "ping"),  // t=1
		edge(7, 8, "other"), // t=2, noise
		{From: 9, To: 10, FromLabel: "N", ToLabel: "N", Label: "x", Time: 1}, // out of order
		edge(2, 1, "pong"), // t=3, completes the match
	})
	if err != nil {
		t.Fatalf("ingest: %v", err)
	}
	if res.Accepted != 3 || res.Rejected != 1 || len(res.Errors) != 1 || res.Errors[0].Line != 3 {
		t.Fatalf("ingest result = %+v", res)
	}
	m := recvMatch(t, sub)
	if m.Query != "pp" || len(m.Edges) != 2 {
		t.Fatalf("match event = %+v", m)
	}
	if m.Edges[0].Label != "ping" || m.Edges[1].Label != "pong" {
		t.Fatalf("match labels = %+v", m.Edges)
	}
	if m.Edges[0].Time != 1 || m.Edges[1].Time != 3 {
		t.Fatalf("match times = %+v", m.Edges)
	}

	// Stats come from the monitor layer, sampled on the work loop.
	stats, err := c.Stats(ctx)
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	if got := stats["server.ingested"].(float64); got != 3 {
		t.Fatalf("server.ingested = %v, want 3", got)
	}
	matches := stats["fleet.matches"].(map[string]any)
	if got := matches["pp"].(float64); got != 1 {
		t.Fatalf("fleet.matches[pp] = %v, want 1", got)
	}

	// Runtime retirement: the stream must end and deliver nothing more.
	if err := c.RemoveQuery(ctx, "pp"); err != nil {
		t.Fatalf("remove: %v", err)
	}
	if err := c.RemoveQuery(ctx, "pp"); err == nil {
		t.Fatal("removing an unknown query must fail")
	}
	select {
	case m, ok := <-sub.Events:
		if ok {
			t.Fatalf("unexpected delivery after removal: %+v", m)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("subscription did not close after query removal")
	}
	if err := sub.Err(); err != nil {
		t.Fatalf("subscription ended with error: %v", err)
	}

	// The stream is still live without a restart: a fresh query over the
	// same connection-less server keeps matching new traffic.
	if err := c.AddQuery(ctx, client.QueryRequest{Name: "pp2", Text: pingPong, Window: 100}); err != nil {
		t.Fatalf("re-register: %v", err)
	}
	sub2, err := c.Subscribe(ctx, "pp2")
	if err != nil {
		t.Fatalf("subscribe pp2: %v", err)
	}
	defer sub2.Close()
	if _, err := c.Ingest(ctx, []client.Edge{edge(5, 6, "ping"), edge(6, 5, "pong")}); err != nil {
		t.Fatalf("ingest 2: %v", err)
	}
	if m := recvMatch(t, sub2); m.Query != "pp2" {
		t.Fatalf("second-generation match = %+v", m)
	}
}

// TestServerDurableRestart proves the acceptance path: with the WAL
// enabled, a server that dies mid-window comes back with its query
// fleet, label table and window state intact, and an edge ingested
// after the restart completes a match whose first half predates it.
func TestServerDurableRestart(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "state")
	ctx := testCtx(t)
	popts := timingsubg.PersistentMultiOptions{Dir: dir, SyncEvery: 1}

	srv1, err := server.NewDurable(server.Config{}, popts)
	if err != nil {
		t.Fatalf("open durable: %v", err)
	}
	ts1 := httptest.NewServer(srv1.Handler())
	c1 := client.New(ts1.URL, nil)
	if err := c1.AddQuery(ctx, client.QueryRequest{Name: "pp", Text: pingPong, Window: 1000}); err != nil {
		t.Fatalf("register: %v", err)
	}
	// First half of the pattern, plus noise, lands before the "crash".
	if _, err := c1.Ingest(ctx, []client.Edge{
		edge(1, 2, "ping"),
		edge(30, 31, "other"),
	}); err != nil {
		t.Fatalf("ingest: %v", err)
	}
	// Kill the process without a clean Close: the HTTP front dies and
	// the fleet is simply abandoned (its WAL was fsynced per append).
	ts1.Close()

	srv2, err := server.NewDurable(server.Config{}, popts)
	if err != nil {
		t.Fatalf("reopen durable: %v", err)
	}
	defer srv2.Close()
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()
	c2 := client.New(ts2.URL, nil)

	// The query registry survived.
	list, err := c2.Queries(ctx)
	if err != nil {
		t.Fatalf("list after restart: %v", err)
	}
	if len(list.Queries) != 1 || list.Queries[0].Name != "pp" || list.Queries[0].Window != 1000 {
		t.Fatalf("query list after restart = %+v", list)
	}
	stats, err := c2.Stats(ctx)
	if err != nil {
		t.Fatalf("stats after restart: %v", err)
	}
	if got := stats["fleet.replayed"].(float64); got != 2 {
		t.Fatalf("fleet.replayed = %v, want 2", got)
	}
	if got := stats["server.last_time"].(float64); got != 2 {
		t.Fatalf("server.last_time = %v, want 2 (stream clock must survive)", got)
	}

	// The second half of the pattern completes against replayed state.
	sub, err := c2.Subscribe(ctx, "pp")
	if err != nil {
		t.Fatalf("subscribe after restart: %v", err)
	}
	defer sub.Close()
	if _, err := c2.Ingest(ctx, []client.Edge{edge(2, 1, "pong")}); err != nil {
		t.Fatalf("ingest after restart: %v", err)
	}
	m := recvMatch(t, sub)
	if len(m.Edges) != 2 || m.Edges[0].Label != "ping" || m.Edges[0].Time != 1 || m.Edges[1].Time != 3 {
		t.Fatalf("post-restart match = %+v", m.Edges)
	}
	// Durable edge IDs are WAL sequence numbers: ping was record 0,
	// pong record 2.
	if m.Edges[0].ID != 0 || m.Edges[1].ID != 2 {
		t.Fatalf("post-restart match IDs = %+v, want WAL seqs 0 and 2", m.Edges)
	}

	// A clean close checkpoints; a third open replays nothing new and
	// still answers.
	if err := srv2.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	srv3, err := server.NewDurable(server.Config{}, popts)
	if err != nil {
		t.Fatalf("third open: %v", err)
	}
	defer srv3.Close()
	ts3 := httptest.NewServer(srv3.Handler())
	defer ts3.Close()
	c3 := client.New(ts3.URL, nil)
	stats, err = c3.Stats(ctx)
	if err != nil {
		t.Fatalf("third stats: %v", err)
	}
	matches := stats["fleet.matches"].(map[string]any)
	if got := matches["pp"].(float64); got != 1 {
		t.Fatalf("durable match count after two restarts = %v, want 1", got)
	}
}

// TestServerShardedFleet runs the serving layer over a sharded fleet
// (the tsserved -fleet-workers path): registration, ingest, match
// delivery and the shard section of the stats snapshot all work, and
// the shard counts reflect the live roster.
func TestServerShardedFleet(t *testing.T) {
	srv := server.New(server.Config{FleetWorkers: 4})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	c := client.New(ts.URL, nil)
	ctx := testCtx(t)

	for _, name := range []string{"pp1", "pp2", "pp3"} {
		if err := c.AddQuery(ctx, client.QueryRequest{Name: name, Text: pingPong, Window: 100}); err != nil {
			t.Fatalf("register %s: %v", name, err)
		}
	}
	sub, err := c.Subscribe(ctx, "pp2")
	if err != nil {
		t.Fatalf("subscribe: %v", err)
	}
	defer sub.Close()
	if _, err := c.Ingest(ctx, []client.Edge{edge(1, 2, "ping"), edge(2, 1, "pong")}); err != nil {
		t.Fatalf("ingest: %v", err)
	}
	if m := recvMatch(t, sub); m.Query != "pp2" || len(m.Edges) != 2 {
		t.Fatalf("sharded match event = %+v", m)
	}

	es, err := c.EngineStats(ctx)
	if err != nil {
		t.Fatalf("engine stats: %v", err)
	}
	if es.FleetWorkers != 4 || len(es.ShardMembers) != 4 {
		t.Fatalf("stats shard section = workers %d, shards %v", es.FleetWorkers, es.ShardMembers)
	}
	total := 0
	for _, n := range es.ShardMembers {
		total += n
	}
	if total != 3 {
		t.Fatalf("shard member counts %v sum to %d, want the 3 live queries", es.ShardMembers, total)
	}
	if es.Queries["pp1"].Matches != 1 || es.Queries["pp3"].Matches != 1 {
		t.Fatalf("broadcast members diverge: %+v", es.Queries)
	}
}

// TestServerBackpressure checks that the bounded work queue sheds or
// delays work instead of buffering without limit: a request whose
// context is already cancelled must not be admitted.
func TestServerBackpressure(t *testing.T) {
	srv := server.New(server.Config{QueueDepth: 1})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	c := client.New(ts.URL, nil)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.Ingest(ctx, []client.Edge{edge(1, 2, "x")}); err == nil {
		t.Fatal("ingest with a dead context must fail")
	}

	// And the server still works afterwards.
	ctx2 := testCtx(t)
	if _, err := c.Ingest(ctx2, []client.Edge{edge(1, 2, "x")}); err != nil {
		t.Fatalf("ingest after cancelled request: %v", err)
	}
}

// flakyProxy is a TCP forwarder whose live connections the test can
// sever at will — the "network dies under an SSE stream" harness for
// the reconnect-and-resume path.
type flakyProxy struct {
	ln      net.Listener
	backend string
	mu      sync.Mutex
	conns   []net.Conn
}

func newFlakyProxy(t *testing.T, backend string) *flakyProxy {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("proxy listen: %v", err)
	}
	p := &flakyProxy{ln: ln, backend: backend}
	go func() {
		for {
			in, err := ln.Accept()
			if err != nil {
				return
			}
			out, err := net.Dial("tcp", backend)
			if err != nil {
				in.Close()
				continue
			}
			p.mu.Lock()
			p.conns = append(p.conns, in, out)
			p.mu.Unlock()
			go func() { io.Copy(out, in); out.Close() }()
			go func() { io.Copy(in, out); in.Close() }()
		}
	}()
	t.Cleanup(func() { ln.Close(); p.killConns() })
	return p
}

func (p *flakyProxy) url() string { return "http://" + p.ln.Addr().String() }

// killConns severs every live proxied connection.
func (p *flakyProxy) killConns() {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, c := range p.conns {
		c.Close()
	}
	p.conns = nil
}

// TestServerSubscribeFilterAndResume drives the new results-plane SSE
// surface directly: a multi-query ?queries= filter, per-query sequence
// numbers on every event, and Last-Event-ID resumption that replays
// events delivered while no subscriber was connected.
func TestServerSubscribeFilterAndResume(t *testing.T) {
	srv := server.New(server.Config{})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	c := client.New(ts.URL, nil)
	ctx := testCtx(t)

	for _, name := range []string{"a", "b", "noise"} {
		if err := c.AddQuery(ctx, client.QueryRequest{Name: name, Text: pingPong, Window: 1000}); err != nil {
			t.Fatalf("register %s: %v", name, err)
		}
	}
	pair := func(x, y int64) []client.Edge {
		return []client.Edge{edge(x, y, "ping"), edge(y, x, "pong")}
	}

	// A filtered subscription sees a and b, never noise (all three
	// queries match every pair — the fleet broadcasts).
	sub, err := c.SubscribeOpts(ctx, client.SubscribeOptions{Queries: []string{"a", "b"}})
	if err != nil {
		t.Fatalf("subscribe: %v", err)
	}
	if _, err := c.Ingest(ctx, pair(1, 2)); err != nil {
		t.Fatalf("ingest: %v", err)
	}
	got := map[string]int64{}
	for i := 0; i < 2; i++ {
		m := recvMatch(t, sub)
		got[m.Query] = m.Seq
	}
	if got["a"] != 1 || got["b"] != 1 {
		t.Fatalf("first round seqs = %v, want a:1 b:1", got)
	}
	token := sub.LastEventID()
	if token == "" {
		t.Fatal("no resume token after delivery")
	}
	sub.Close()

	// Matches delivered while nobody is connected land in the resume
	// ring; a new subscription presenting the old token replays them.
	if _, err := c.Ingest(ctx, pair(3, 4)); err != nil {
		t.Fatalf("ingest while disconnected: %v", err)
	}
	sub2, err := c.SubscribeOpts(ctx, client.SubscribeOptions{Queries: []string{"a", "b"}, LastEventID: token})
	if err != nil {
		t.Fatalf("resubscribe: %v", err)
	}
	defer sub2.Close()
	round2 := map[string]int64{}
	for i := 0; i < 2; i++ {
		m := recvMatch(t, sub2)
		if m.Seq <= got[m.Query] {
			t.Fatalf("resumed stream replayed already-seen %s seq %d", m.Query, m.Seq)
		}
		round2[m.Query] = m.Seq
	}
	if round2["a"] != 2 || round2["b"] != 2 {
		t.Fatalf("resumed seqs = %v, want a:2 b:2", round2)
	}
	// And the live tail still flows on the resumed stream.
	if _, err := c.Ingest(ctx, pair(5, 6)); err != nil {
		t.Fatalf("ingest after resume: %v", err)
	}
	for i := 0; i < 2; i++ {
		if m := recvMatch(t, sub2); m.Seq != 3 {
			t.Fatalf("live-after-resume %s seq = %d, want 3", m.Query, m.Seq)
		}
	}
}

// TestClientReconnectResume kills the TCP connection under a
// Reconnect-enabled subscription and proves the client re-establishes
// the stream and resumes: every match is delivered exactly once, in
// order, across the outage — including one reported while the client
// was disconnected.
func TestClientReconnectResume(t *testing.T) {
	srv := server.New(server.Config{})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	ctx := testCtx(t)

	// Admin and ingest go straight to the server; only the SSE stream
	// runs through the severable proxy.
	direct := client.New(ts.URL, nil)
	if err := direct.AddQuery(ctx, client.QueryRequest{Name: "pp", Text: pingPong, Window: 10000}); err != nil {
		t.Fatalf("register: %v", err)
	}
	proxy := newFlakyProxy(t, ts.Listener.Addr().String())
	streamer := client.New(proxy.url(), nil)
	sub, err := streamer.SubscribeOpts(ctx, client.SubscribeOptions{
		Queries:   []string{"pp"},
		Reconnect: true,
	})
	if err != nil {
		t.Fatalf("subscribe through proxy: %v", err)
	}
	defer sub.Close()

	pair := func(x, y int64) []client.Edge {
		return []client.Edge{edge(x, y, "ping"), edge(y, x, "pong")}
	}
	if _, err := direct.Ingest(ctx, pair(1, 2)); err != nil {
		t.Fatalf("ingest 1: %v", err)
	}
	if m := recvMatch(t, sub); m.Seq != 1 {
		t.Fatalf("first match seq = %d, want 1", m.Seq)
	}

	// Sever the stream, and report a match while the client is down.
	proxy.killConns()
	if _, err := direct.Ingest(ctx, pair(3, 4)); err != nil {
		t.Fatalf("ingest during outage: %v", err)
	}
	// The client reconnects on its own and resumes: the outage match is
	// replayed from the server's ring, exactly once.
	if m := recvMatch(t, sub); m.Seq != 2 {
		t.Fatalf("post-outage match seq = %d, want 2 (no loss, no dup)", m.Seq)
	}
	if _, err := direct.Ingest(ctx, pair(5, 6)); err != nil {
		t.Fatalf("ingest 3: %v", err)
	}
	if m := recvMatch(t, sub); m.Seq != 3 {
		t.Fatalf("live match after reconnect seq = %d, want 3", m.Seq)
	}

	// Retiring the query ends even a reconnecting stream: the engine
	// retires the subscription, the reconnect attempt gets a definitive
	// 404, and the client reports it as the terminal error.
	if err := direct.RemoveQuery(ctx, "pp"); err != nil {
		t.Fatalf("remove: %v", err)
	}
	select {
	case m, ok := <-sub.Events:
		if ok {
			t.Fatalf("unexpected delivery after removal: %+v", m)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("reconnecting stream did not terminate after query removal")
	}
	var apiErr *client.APIError
	if err := sub.Err(); !errors.As(err, &apiErr) || apiErr.StatusCode != 404 {
		t.Fatalf("terminal error = %v, want a 404 APIError", err)
	}
}

// TestServerSubscribeFreshStartsFromNow pins SSE convention: a
// subscriber presenting no Last-Event-ID gets a live tail, not a
// replay of retained history; and a query name containing a comma
// survives the trip through the client's verbatim ?query= parameters.
func TestServerSubscribeFreshStartsFromNow(t *testing.T) {
	srv := server.New(server.Config{})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	c := client.New(ts.URL, nil)
	ctx := testCtx(t)

	const oddName = "pp,v2" // commas are legal in query names
	if err := c.AddQuery(ctx, client.QueryRequest{Name: oddName, Text: pingPong, Window: 1000}); err != nil {
		t.Fatalf("register: %v", err)
	}
	// History accrues with nobody subscribed.
	if _, err := c.Ingest(ctx, []client.Edge{edge(1, 2, "ping"), edge(2, 1, "pong")}); err != nil {
		t.Fatalf("ingest: %v", err)
	}
	sub, err := c.Subscribe(ctx, oddName) // no Last-Event-ID
	if err != nil {
		t.Fatalf("subscribe to comma-name: %v", err)
	}
	defer sub.Close()
	// The retained seq-1 event must NOT be replayed...
	select {
	case m := <-sub.Events:
		t.Fatalf("fresh subscriber replayed history: %+v", m)
	case <-time.After(200 * time.Millisecond):
	}
	// ...but live traffic flows, under the exact comma name.
	if _, err := c.Ingest(ctx, []client.Edge{edge(3, 4, "ping"), edge(4, 3, "pong")}); err != nil {
		t.Fatalf("ingest 2: %v", err)
	}
	if m := recvMatch(t, sub); m.Query != oddName || m.Seq != 2 {
		t.Fatalf("live match = %+v, want query %q seq 2", m, oddName)
	}
	// Explicit zero cursors opt back in to the retained history.
	sub2, err := c.SubscribeOpts(ctx, client.SubscribeOptions{
		Queries:     []string{oddName},
		LastEventID: "pp%2Cv2=0",
	})
	if err != nil {
		t.Fatalf("backfill subscribe: %v", err)
	}
	defer sub2.Close()
	if m := recvMatch(t, sub2); m.Seq != 1 {
		t.Fatalf("backfill first event seq = %d, want 1", m.Seq)
	}
	if m := recvMatch(t, sub2); m.Seq != 2 {
		t.Fatalf("backfill second event seq = %d, want 2", m.Seq)
	}
}
