package server

import (
	"net/http"
	"sort"

	"timingsubg"
	"timingsubg/internal/monitor"
)

// stageOrder fixes the exposition order of the per-stage latency
// histograms — stable output is what the golden-format test (and any
// diff-based scrape tooling) keys on.
var stageOrder = []string{
	"ingest", "wal_append", "wal_sync", "wal_group_commit",
	"shard_queue_wait", "shard_exec", "join", "expiry", "dispatch",
	"detection", "event_time_lag",
}

// stageSnapshot selects one stage's summary from the breakdown.
func stageSnapshot(st *timingsubg.StageStats, stage string) timingsubg.LatencySnapshot {
	switch stage {
	case "ingest":
		return st.Ingest
	case "wal_append":
		return st.WALAppend
	case "wal_sync":
		return st.WALSync
	case "wal_group_commit":
		return st.GroupCommit
	case "shard_queue_wait":
		return st.QueueWait
	case "shard_exec":
		return st.ShardExec
	case "join":
		return st.Join
	case "expiry":
		return st.Expiry
	case "dispatch":
		return st.Dispatch
	case "detection":
		return st.Detection
	case "event_time_lag":
		return st.EventTimeLag
	}
	return timingsubg.LatencySnapshot{}
}

// handleProm serves GET /metrics in the Prometheus text format. Unlike
// GET /stats it does NOT ride the serialized work queue: the snapshot
// behind it (FastStats) is documented concurrency-safe against feeding,
// and the histograms are atomics — so a scrape never waits in line
// behind an ingest burst, and a stalled scraper cannot exert
// backpressure on producers.
func (s *Server) handleProm(w http.ResponseWriter, r *http.Request) {
	st := timingsubg.FastStats(s.fl)
	pw := monitor.NewPromWriter()

	// Fleet-wide counters and gauges.
	pw.Counter("timingsubg_ingested_edges_total", nil, float64(s.ingested.Load()))
	pw.Counter("timingsubg_fed_edges_total", nil, float64(st.Fed))
	pw.Counter("timingsubg_matches_total", nil, float64(st.Matches))
	pw.Counter("timingsubg_discarded_edges_total", nil, float64(st.Discarded))
	pw.Counter("timingsubg_subscription_delivered_total", nil, float64(st.SubscriptionDelivered))
	pw.Counter("timingsubg_subscription_dropped_total", nil, float64(st.SubscriptionDropped))
	pw.Gauge("timingsubg_window_edges", nil, float64(st.InWindow))
	pw.Gauge("timingsubg_queries", nil, float64(len(st.Queries)))
	pw.Gauge("timingsubg_subscriptions", nil, float64(st.Subscriptions))
	pw.Gauge("timingsubg_queue_depth", nil, float64(s.sched.Len()))
	if st.Durable {
		pw.Counter("timingsubg_wal_seq", nil, float64(st.WALSeq))
		pw.Counter("timingsubg_wal_syncs_total", nil, float64(st.WALSyncs))
		pw.Counter("timingsubg_replayed_edges_total", nil, float64(st.Replayed))
	}
	if st.WatermarkLagNs != 0 {
		pw.Gauge("timingsubg_watermark_lag_seconds", nil, float64(st.WatermarkLagNs)/1e9)
	}

	// Per-query attribution, sorted for deterministic output.
	names := make([]string, 0, len(st.Queries))
	for name := range st.Queries {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		qs := st.Queries[name]
		l := map[string]string{"query": name}
		pw.Counter("timingsubg_query_matches_total", l, float64(qs.Matches))
		pw.Counter("timingsubg_query_delivered_total", l, float64(qs.SubscriptionDelivered))
		pw.Counter("timingsubg_query_dropped_total", l, float64(qs.SubscriptionDropped))
		pw.Counter("timingsubg_query_join_scanned_total", l, float64(qs.JoinScanned))
		pw.Counter("timingsubg_query_join_candidates_total", l, float64(qs.JoinCandidates))
		pw.Counter("timingsubg_query_expiry_batches_total", l, float64(qs.ExpiryBatches))
		pw.Counter("timingsubg_query_expiry_evicted_total", l, float64(qs.ExpiryEvicted))
		pw.Gauge("timingsubg_query_window_edges", l, float64(qs.InWindow))
	}

	// Per-tenant control-plane series — emitted only when tenancy is
	// enabled, so a single-tenant server's exposition stays
	// byte-identical to versions that predate the control plane.
	// Tenant names come sorted from the registry; admission counters
	// come from the tenant's buckets, engine counters and the
	// tenant-wide detection histogram from the group aggregation
	// (QuerySpec.Group = tenant), which survives query retirement.
	if s.tenants != nil {
		for _, name := range s.tenants.Names() {
			tn, ok := s.tenants.Get(name)
			if !ok {
				continue
			}
			u := tn.Usage()
			l := map[string]string{"tenant": name}
			pw.Counter("timingsubg_tenant_admitted_edges_total", l, float64(u.AdmittedEdges))
			pw.Counter("timingsubg_tenant_rejected_edges_total", l, float64(u.RejectedEdges))
			pw.Counter("timingsubg_tenant_admitted_batches_total", l, float64(u.AdmittedBatches))
			pw.Counter("timingsubg_tenant_rejected_batches_total", l, float64(u.RejectedBatches))
			pw.Counter("timingsubg_tenant_ingest_bytes_total", l, float64(u.IngestBytes))
			pw.Gauge("timingsubg_tenant_queries", l, float64(u.Queries))
			pw.Gauge("timingsubg_tenant_subscriptions", l, float64(u.Subscriptions))
			if gs, ok := st.Groups[name]; ok {
				pw.Counter("timingsubg_tenant_matches_total", l, float64(gs.Matches))
				pw.Counter("timingsubg_tenant_delivered_total", l, float64(gs.SubscriptionDelivered))
				pw.Counter("timingsubg_tenant_dropped_total", l, float64(gs.SubscriptionDropped))
				if gs.Detection != nil {
					pw.Histogram("timingsubg_tenant_detection_latency_seconds", l, *gs.Detection)
				}
			}
		}
	}

	// Per-stage latency histograms (absent when metrics are disabled).
	if st.Stages != nil {
		for _, stage := range stageOrder {
			pw.Histogram("timingsubg_stage_latency_seconds",
				map[string]string{"stage": stage}, stageSnapshot(st.Stages, stage))
		}
	}
	// Per-query detection latency — the paper's end-to-end metric,
	// attributed to the query that matched.
	for _, name := range names {
		if det := st.Queries[name].Detection; det != nil {
			pw.Histogram("timingsubg_query_detection_latency_seconds",
				map[string]string{"query": name}, *det)
		}
	}

	w.Header().Set("Content-Type", monitor.ContentType)
	w.Write(pw.Bytes())
}
