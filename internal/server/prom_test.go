package server_test

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"timingsubg/client"
	"timingsubg/internal/server"
)

// scrape GETs /metrics and returns the exposition body.
func scrape(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatalf("scrape: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("scrape status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("scrape content-type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read scrape body: %v", err)
	}
	return string(body)
}

// sampleValue extracts one sample's value from the exposition, by its
// full series name (including labels).
func sampleValue(t *testing.T, out, series string) float64 {
	t.Helper()
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, series+" ") {
			v, err := strconv.ParseFloat(line[len(series)+1:], 64)
			if err != nil {
				t.Fatalf("bad value in %q: %v", line, err)
			}
			return v
		}
	}
	t.Fatalf("series %q not found in exposition:\n%s", series, out)
	return 0
}

// TestMetricsExposition is the golden-format test of GET /metrics:
// the stage histograms are present with monotone cumulative buckets,
// `_count` equals the +Inf bucket, the per-query detection histogram is
// attributed, and the counter plane agrees with /stats accounting.
func TestMetricsExposition(t *testing.T) {
	srv := server.New(server.Config{EventTimeUnit: time.Millisecond})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	c := client.New(ts.URL, nil)
	ctx := testCtx(t)

	if err := c.AddQuery(ctx, client.QueryRequest{Name: "pp", Text: pingPong, Window: 100}); err != nil {
		t.Fatalf("register: %v", err)
	}
	sub, err := c.Subscribe(ctx, "pp")
	if err != nil {
		t.Fatalf("subscribe: %v", err)
	}
	defer sub.Close()
	if _, err := c.Ingest(ctx, []client.Edge{
		edge(1, 2, "ping"),
		edge(2, 1, "pong"), // completes a match
	}); err != nil {
		t.Fatalf("ingest: %v", err)
	}
	recvMatch(t, sub)

	out := scrape(t, ts.URL)

	// Counters agree with what was ingested and matched.
	if v := sampleValue(t, out, "timingsubg_ingested_edges_total"); v != 2 {
		t.Fatalf("ingested_edges_total = %v, want 2", v)
	}
	if v := sampleValue(t, out, "timingsubg_matches_total"); v != 1 {
		t.Fatalf("matches_total = %v, want 1", v)
	}
	if v := sampleValue(t, out, `timingsubg_query_matches_total{query="pp"}`); v != 1 {
		t.Fatalf("per-query matches = %v, want 1", v)
	}
	if v := sampleValue(t, out, `timingsubg_query_delivered_total{query="pp"}`); v < 1 {
		t.Fatalf("per-query delivered = %v, want >= 1", v)
	}

	// Every stage series is exposed; the hot ones carry samples.
	for _, stage := range []string{
		"ingest", "wal_append", "wal_sync", "wal_group_commit",
		"shard_queue_wait", "shard_exec", "join", "expiry", "dispatch",
		"detection", "event_time_lag",
	} {
		label := `stage="` + stage + `"`
		if !strings.Contains(out, "timingsubg_stage_latency_seconds_bucket{"+label) {
			t.Fatalf("stage %s missing from exposition:\n%s", stage, out)
		}
		want := uint64(0)
		switch stage {
		case "ingest":
			want = 2
		// join is sampled (first Process call always observes), so two
		// fed edges yield one sample.
		case "join", "dispatch", "detection", "event_time_lag":
			want = 1
		}
		checkServerHistogram(t, out, "timingsubg_stage_latency_seconds", label, want)
	}

	// Per-query detection latency is attributed by name.
	checkServerHistogram(t, out, "timingsubg_query_detection_latency_seconds", `query="pp"`, 1)

	// Event time is configured, so the watermark gauge is live.
	if v := sampleValue(t, out, "timingsubg_watermark_lag_seconds"); v <= 0 {
		t.Fatalf("watermark_lag_seconds = %v, want > 0 (timestamps near the epoch)", v)
	}
}

// checkServerHistogram verifies one exposed histogram series: buckets
// non-decreasing, +Inf == _count, _sum present, and — when want > 0 —
// the exact sample count.
func checkServerHistogram(t *testing.T, out, name, label string, want uint64) {
	t.Helper()
	var last, count uint64
	var inf, sawCount, sawSum bool
	for _, line := range strings.Split(out, "\n") {
		switch {
		case strings.HasPrefix(line, name+"_bucket{"+label+","):
			v := uint64(parseLineValue(t, line))
			if v < last {
				t.Fatalf("buckets must be non-decreasing: %q after %d", line, last)
			}
			last = v
			if strings.Contains(line, `le="+Inf"`) {
				inf = true
			}
		case strings.HasPrefix(line, name+"_count{"+label+"}"):
			sawCount = true
			count = uint64(parseLineValue(t, line))
		case strings.HasPrefix(line, name+"_sum{"+label+"}"):
			sawSum = true
		}
	}
	if !inf || !sawCount || !sawSum {
		t.Fatalf("series %s{%s}: inf=%v count=%v sum=%v\n%s", name, label, inf, sawCount, sawSum, out)
	}
	if last != count {
		t.Fatalf("series %s{%s}: +Inf bucket %d != _count %d", name, label, last, count)
	}
	if count != want {
		t.Fatalf("series %s{%s}: count = %d, want %d", name, label, count, want)
	}
}

func parseLineValue(t *testing.T, line string) float64 {
	t.Helper()
	i := strings.LastIndexByte(line, ' ')
	v, err := strconv.ParseFloat(line[i+1:], 64)
	if err != nil {
		t.Fatalf("bad sample value in %q: %v", line, err)
	}
	return v
}

// TestMetricsScrapeWhileIngesting hammers GET /metrics concurrently
// with ingest on a sharded fleet — the contract that a scrape is safe
// against feeding (and, under -race, that the histogram plane is
// data-race-free).
func TestMetricsScrapeWhileIngesting(t *testing.T) {
	srv := server.New(server.Config{FleetWorkers: 2})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	c := client.New(ts.URL, nil)
	ctx := testCtx(t)

	for _, name := range []string{"pp1", "pp2", "pp3"} {
		if err := c.AddQuery(ctx, client.QueryRequest{Name: name, Text: pingPong, Window: 50}); err != nil {
			t.Fatalf("register %s: %v", name, err)
		}
	}

	const rounds = 40
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			batch := []client.Edge{
				edge(int64(i), int64(i)+1, "ping"),
				edge(int64(i)+1, int64(i), "pong"),
			}
			if _, err := c.Ingest(ctx, batch); err != nil {
				t.Errorf("ingest round %d: %v", i, err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			out := scrape(t, ts.URL)
			// Spot-check internal consistency on every concurrent scrape.
			checkServerHistogram(t, out, "timingsubg_stage_latency_seconds", `stage="shard_exec"`,
				uint64(parseLineValue(t, findLine(t, out, `timingsubg_stage_latency_seconds_count{stage="shard_exec"}`))))
		}
	}()
	wg.Wait()

	out := scrape(t, ts.URL)
	if v := sampleValue(t, out, "timingsubg_matches_total"); v != rounds*3 {
		t.Fatalf("matches_total = %v, want %d", v, rounds*3)
	}
	checkServerHistogram(t, out, "timingsubg_stage_latency_seconds", `stage="ingest"`, rounds)
	// Sharded fan-out: 2 shards per batch round.
	checkServerHistogram(t, out, "timingsubg_stage_latency_seconds", `stage="shard_exec"`, rounds*2)
}

func findLine(t *testing.T, out, prefix string) string {
	t.Helper()
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, prefix+" ") {
			return line
		}
	}
	t.Fatalf("series %q not found", prefix)
	return ""
}
