package server

import (
	"net/http"
	"sync/atomic"

	"timingsubg/client"
)

// Gate is the boot-time readiness gate: an http.Handler that can start
// serving before the Server exists. Until Set installs the real
// handler, /healthz answers 200 (the process is alive) while /readyz —
// and every other route — answers 503 with Retry-After, which is the
// honest state while durable recovery replays the WAL: the process is
// up, but it must not receive traffic yet. cmd/tsserved listens behind
// a Gate so orchestrators can distinguish "recovering, leave it alone"
// from "dead, restart it" from the very first request.
type Gate struct {
	h atomic.Value // http.Handler once Set
}

// NewGate returns a gate with no handler installed.
func NewGate() *Gate { return &Gate{} }

// Set installs the real handler; all subsequent requests pass through.
func (g *Gate) Set(h http.Handler) { g.h.Store(&h) }

func (g *Gate) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if h, ok := g.h.Load().(*http.Handler); ok {
		(*h).ServeHTTP(w, r)
		return
	}
	if r.URL.Path == "/healthz" {
		writeJSON(w, http.StatusOK, client.Health{Status: "ok"})
		return
	}
	w.Header().Set("Retry-After", "1")
	if r.URL.Path == "/readyz" {
		writeJSON(w, http.StatusServiceUnavailable, client.Health{Status: "starting"})
		return
	}
	httpError(w, http.StatusServiceUnavailable, "server starting (recovery in progress)")
}
