package server

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"timingsubg"
	"timingsubg/client"
	"timingsubg/internal/query"
)

// ParseQueryRequest compiles a wire query registration into an engine
// spec, interning labels into the server's shared table.
func ParseQueryRequest(req client.QueryRequest, labels *timingsubg.Labels) (timingsubg.QuerySpec, error) {
	var spec timingsubg.QuerySpec
	switch {
	case req.Name == "" || strings.ContainsAny(req.Name, "/\\") || req.Name == "." || req.Name == "..":
		return spec, fmt.Errorf("query name %q must be non-empty and path-safe", req.Name)
	case req.Window <= 0:
		return spec, fmt.Errorf("query %q: window must be positive, got %d", req.Name, req.Window)
	}
	q, err := query.Parse(strings.NewReader(req.Text), labels)
	if err != nil {
		return spec, fmt.Errorf("query %q: %w", req.Name, err)
	}
	return timingsubg.QuerySpec{
		Name:    req.Name,
		Query:   q,
		Options: timingsubg.Options{Window: timingsubg.Timestamp(req.Window)},
	}, nil
}

// Query registrations are durable alongside the WAL: each one is a JSON
// file <dir>/<name>.json holding the wire-format QueryRequest, so a
// restarted server re-registers the fleet before replaying the log.

const queryFileSuffix = ".json"

// LoadQueries reads every persisted query registration in dir, sorted
// by name. A missing directory is an empty registry, not an error.
func LoadQueries(dir string) ([]client.QueryRequest, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("server: read query registry %s: %w", dir, err)
	}
	var out []client.QueryRequest
	for _, ent := range entries {
		name := ent.Name()
		if ent.IsDir() || !strings.HasSuffix(name, queryFileSuffix) {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return nil, fmt.Errorf("server: read query file %s: %w", name, err)
		}
		var req client.QueryRequest
		if err := json.Unmarshal(data, &req); err != nil {
			return nil, fmt.Errorf("server: parse query file %s: %w", name, err)
		}
		out = append(out, req)
	}
	sort.Slice(out, func(i, j int) bool {
		// Owner first: the load order (and so the fleet's slot order) is
		// deterministic even when two tenants share a wire name.
		if out[i].Tenant != out[j].Tenant {
			return out[i].Tenant < out[j].Tenant
		}
		return out[i].Name < out[j].Name
	})
	return out, nil
}

// saveQueryFile atomically persists one registration as <base>.json —
// base is the internal (tenant-scoped) roster name, while req.Name
// stays the wire name, with req.Tenant recording the owner.
func saveQueryFile(dir, base string, req client.QueryRequest) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("server: query registry mkdir: %w", err)
	}
	data, err := json.MarshalIndent(req, "", "  ")
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, "query-*.tmp")
	if err != nil {
		return fmt.Errorf("server: query file temp: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("server: query file write: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("server: query file sync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("server: query file close: %w", err)
	}
	if err := os.Rename(tmpName, filepath.Join(dir, base+queryFileSuffix)); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("server: query file rename: %w", err)
	}
	return nil
}

// The label intern table is durable too: WAL records and checkpoints
// store label IDs, not strings, so a restarted server must reproduce
// the exact string→ID assignment of the previous run before it replays
// anything. The table is snapshotted (atomically, full contents in ID
// order) whenever it has grown, always *before* the first WAL append
// that could reference a new ID.

const labelsFile = "labels.json"

// loadLabels restores a persisted intern table into labels by interning
// the saved strings in ID order. A missing file is a cold start.
func loadLabels(dir string, labels *timingsubg.Labels) error {
	data, err := os.ReadFile(filepath.Join(dir, labelsFile))
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return fmt.Errorf("server: read label table: %w", err)
	}
	var strs []string
	if err := json.Unmarshal(data, &strs); err != nil {
		return fmt.Errorf("server: parse label table: %w", err)
	}
	for i, s := range strs {
		if id := labels.Intern(s); int(id) != i {
			return fmt.Errorf("server: label table corrupt: %q interned as %d, want %d", s, id, i)
		}
	}
	return nil
}

// saveLabels atomically snapshots the intern table.
func saveLabels(dir string, labels *timingsubg.Labels) error {
	data, err := json.Marshal(labels.Strings())
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, "labels-*.tmp")
	if err != nil {
		return fmt.Errorf("server: label table temp: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("server: label table write: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("server: label table sync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("server: label table close: %w", err)
	}
	if err := os.Rename(tmpName, filepath.Join(dir, labelsFile)); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("server: label table rename: %w", err)
	}
	return nil
}

// removeQueryFile drops one registration; a missing file is fine.
func removeQueryFile(dir, name string) error {
	err := os.Remove(filepath.Join(dir, name+queryFileSuffix))
	if err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("server: remove query file: %w", err)
	}
	return nil
}
