package server_test

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"timingsubg"
	"timingsubg/client"
	"timingsubg/internal/server"
	"timingsubg/internal/tenant"
)

// twoTenantRegistry builds a registry with tenants "acme" (write key
// k-acme, read key k-acme-ro) and "bmart" (write key k-bmart).
func twoTenantRegistry(t *testing.T) *tenant.Registry {
	t.Helper()
	reg := tenant.NewRegistry()
	if _, err := reg.Create(tenant.Spec{
		Name: "acme",
		Keys: []tenant.KeySpec{
			{Key: "k-acme", Role: tenant.RoleWrite},
			{Key: "k-acme-ro", Role: tenant.RoleRead},
		},
	}); err != nil {
		t.Fatalf("create acme: %v", err)
	}
	if _, err := reg.Create(tenant.Spec{
		Name: "bmart",
		Keys: []tenant.KeySpec{{Key: "k-bmart", Role: tenant.RoleWrite}},
	}); err != nil {
		t.Fatalf("create bmart: %v", err)
	}
	return reg
}

// statusOf unwraps the HTTP status code of a client error.
func statusOf(t *testing.T, err error) int {
	t.Helper()
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) {
		t.Fatalf("want an *APIError, got %v", err)
	}
	return apiErr.StatusCode
}

func TestTenantAuth(t *testing.T) {
	srv := server.New(server.Config{Tenants: twoTenantRegistry(t), AdminKey: "root"})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	ctx := testCtx(t)
	base := client.New(ts.URL, nil)
	pp := client.QueryRequest{Name: "pp", Text: pingPong, Window: 100}

	// No key and no default tenant: 401, with a WWW-Authenticate
	// challenge naming the scheme.
	if err := base.AddQuery(ctx, pp); statusOf(t, err) != 401 {
		t.Fatalf("unauthenticated write = %v, want 401", err)
	}
	resp, err := http.Get(ts.URL + "/queries")
	if err != nil {
		t.Fatalf("raw get: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != 401 || !strings.Contains(resp.Header.Get("WWW-Authenticate"), "Bearer") {
		t.Fatalf("challenge = %d %q, want 401 with Bearer", resp.StatusCode, resp.Header.Get("WWW-Authenticate"))
	}
	// Unknown key: 401. Read-only key on a write route: 403.
	if err := base.WithAPIKey("nope").AddQuery(ctx, pp); statusOf(t, err) != 401 {
		t.Fatal("unknown key must 401")
	}
	if err := base.WithAPIKey("k-acme-ro").AddQuery(ctx, pp); statusOf(t, err) != 403 {
		t.Fatal("read-only key on POST /queries must 403")
	}
	// The write key works; the read-only key can read what it wrote.
	acme := base.WithAPIKey("k-acme")
	if err := acme.AddQuery(ctx, pp); err != nil {
		t.Fatalf("write-key register: %v", err)
	}
	list, err := base.WithAPIKey("k-acme-ro").Queries(ctx)
	if err != nil {
		t.Fatalf("read-key list: %v", err)
	}
	if len(list.Queries) != 1 || list.Queries[0].Name != "pp" {
		t.Fatalf("read-key list = %+v", list)
	}

	// Liveness, readiness and the Prometheus plane stay unauthenticated:
	// probes and scrapers don't carry tenant credentials.
	for _, path := range []string{"/healthz", "/readyz", "/metrics"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatalf("get %s: %v", path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("%s = %d, want 200 without a key", path, resp.StatusCode)
		}
	}

	// The /tenants admin API rejects tenant keys and accepts the admin
	// key; the listing carries usage but never echoes keys.
	if _, err := acme.Tenants(ctx); statusOf(t, err) != 401 {
		t.Fatal("tenant key on /tenants must 401")
	}
	admin := base.WithAPIKey("root")
	tl, err := admin.Tenants(ctx)
	if err != nil {
		t.Fatalf("admin list tenants: %v", err)
	}
	if len(tl.Tenants) != 2 {
		t.Fatalf("tenant list = %+v, want acme and bmart", tl)
	}
	// The admin key addresses the raw roster: internal scoped names.
	al, err := admin.Queries(ctx)
	if err != nil {
		t.Fatalf("admin list queries: %v", err)
	}
	if len(al.Queries) != 1 || al.Queries[0].Name != "acme:pp" || al.Queries[0].Tenant != "acme" {
		t.Fatalf("admin query list = %+v, want internal name acme:pp", al)
	}
}

func TestTenantNamespaceIsolation(t *testing.T) {
	srv := server.New(server.Config{Tenants: twoTenantRegistry(t)})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	ctx := testCtx(t)
	acme := client.New(ts.URL, nil).WithAPIKey("k-acme")
	bmart := client.New(ts.URL, nil).WithAPIKey("k-bmart")

	// acme registers "pp". To bmart that name simply does not exist:
	// not listable, not subscribable, not deletable — same 404 as a
	// name nobody owns.
	if err := acme.AddQuery(ctx, client.QueryRequest{Name: "pp", Text: pingPong, Window: 1000}); err != nil {
		t.Fatalf("acme register: %v", err)
	}
	if list, err := bmart.Queries(ctx); err != nil || len(list.Queries) != 0 {
		t.Fatalf("bmart sees foreign queries: %+v (%v)", list, err)
	}
	if _, err := bmart.Subscribe(ctx, "pp"); statusOf(t, err) != 404 {
		t.Fatal("cross-tenant subscribe must 404")
	}
	if err := bmart.RemoveQuery(ctx, "pp"); statusOf(t, err) != 404 {
		t.Fatal("cross-tenant delete must 404")
	}

	// Both namespaces can hold the same wire name at once.
	if err := bmart.AddQuery(ctx, client.QueryRequest{Name: "pp", Text: pingPong, Window: 1000}); err != nil {
		t.Fatalf("bmart register same wire name: %v", err)
	}
	list, err := acme.Queries(ctx)
	if err != nil || len(list.Queries) != 1 || list.Queries[0].Name != "pp" || list.Queries[0].Tenant != "acme" {
		t.Fatalf("acme list = %+v (%v)", list, err)
	}

	// The edge stream is shared, so both tenants' queries match the
	// same traffic — but an unfiltered subscription is scoped to the
	// caller's namespace: acme's stream only ever carries acme's
	// queries, even though bmart's "pp" matched the same pair.
	sub, err := acme.SubscribeOpts(ctx, client.SubscribeOptions{})
	if err != nil {
		t.Fatalf("acme unfiltered subscribe: %v", err)
	}
	defer sub.Close()
	if _, err := acme.Ingest(ctx, []client.Edge{edge(1, 2, "ping"), edge(2, 1, "pong")}); err != nil {
		t.Fatalf("ingest: %v", err)
	}
	m := recvMatch(t, sub)
	if m.Query != "pp" || m.Tenant != "acme" {
		t.Fatalf("match = %+v, want acme's pp under its wire name", m)
	}
	select {
	case m := <-sub.Events:
		t.Fatalf("acme's stream leaked a foreign event: %+v", m)
	case <-time.After(200 * time.Millisecond):
	}

	// A tenant's /stats is its own slice, keyed by wire names.
	stats, err := acme.Stats(ctx)
	if err != nil {
		t.Fatalf("acme stats: %v", err)
	}
	if got := stats["tenant"]; got != "acme" {
		t.Fatalf("stats tenant = %v", got)
	}
	queries := stats["queries"].(map[string]any)
	if _, ok := queries["pp"]; !ok || len(queries) != 1 {
		t.Fatalf("tenant stats queries = %v, want exactly pp", queries)
	}

	// Deleting its own "pp" leaves bmart's untouched.
	if err := acme.RemoveQuery(ctx, "pp"); err != nil {
		t.Fatalf("acme delete: %v", err)
	}
	if list, err := bmart.Queries(ctx); err != nil || len(list.Queries) != 1 {
		t.Fatalf("bmart lost its query to acme's delete: %+v (%v)", list, err)
	}
}

// TestTenantQuota429RoundTrip drives the full admission loop through
// the client: a rate rejection carries Retry-After and refunds the
// tokens the aborted request took; a quota rejection is a 429 without
// Retry-After; releasing capacity re-admits.
func TestTenantQuota429RoundTrip(t *testing.T) {
	reg := tenant.NewRegistry()
	if _, err := reg.Create(tenant.Spec{
		Name: "metered",
		Keys: []tenant.KeySpec{{Key: "k-m"}},
		Limits: tenant.Limits{
			// A trickle of a rate so mid-test refill is negligible: the
			// burst is the whole budget.
			EdgesPerSec:      0.5,
			EdgeBurst:        2,
			MaxQueries:       1,
			MaxSubscriptions: 1,
		},
	}); err != nil {
		t.Fatalf("create: %v", err)
	}
	srv := server.New(server.Config{Tenants: reg})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	ctx := testCtx(t)
	c := client.New(ts.URL, nil).WithAPIKey("k-m")

	if err := c.AddQuery(ctx, client.QueryRequest{Name: "pp", Text: pingPong, Window: 10000}); err != nil {
		t.Fatalf("register: %v", err)
	}
	// Query quota: the second registration is refused with a plain 429
	// — no Retry-After, because no amount of waiting frees a slot.
	err := c.AddQuery(ctx, client.QueryRequest{Name: "pp2", Text: pingPong, Window: 10000})
	var limited *client.ErrRateLimited
	if !errors.As(err, &limited) || limited.RetryAfter != 0 {
		t.Fatalf("over-quota register = %v, want ErrRateLimited without Retry-After", err)
	}
	// And the legacy APIError matching still sees the same error.
	if statusOf(t, err) != 429 {
		t.Fatalf("quota rejection status = %v", err)
	}

	// Edge budget is 2 (the burst). One edge: fine, one token left.
	if _, err := c.Ingest(ctx, []client.Edge{edge(1, 2, "ping")}); err != nil {
		t.Fatalf("first ingest: %v", err)
	}
	// A two-edge batch takes the last token at line 1, rejects at line
	// 2, and refunds — all-or-nothing, so a retry can land the same
	// batch once the bucket refills.
	_, err = c.Ingest(ctx, []client.Edge{edge(2, 1, "pong"), edge(5, 6, "ping")})
	if !errors.As(err, &limited) {
		t.Fatalf("over-rate ingest = %v, want ErrRateLimited", err)
	}
	if limited.RetryAfter < time.Second {
		t.Fatalf("Retry-After = %v, want >= 1s (whole seconds, rounded up)", limited.RetryAfter)
	}
	if !strings.Contains(limited.Message, "nothing ingested") {
		t.Fatalf("rejection message = %q, want the nothing-ingested contract", limited.Message)
	}
	// The refund left the pre-batch balance intact: a single edge is
	// admitted immediately. Without the refund the bucket would be
	// empty and this would 429.
	if _, err := c.Ingest(ctx, []client.Edge{edge(2, 1, "pong")}); err != nil {
		t.Fatalf("ingest after refund: %v (refund on abort is broken)", err)
	}
	// And now the budget really is gone.
	if _, err := c.Ingest(ctx, []client.Edge{edge(7, 8, "ping")}); !errors.As(err, &limited) {
		t.Fatalf("exhausted ingest = %v, want ErrRateLimited", err)
	}

	// Subscription quota: the second concurrent stream is refused.
	sub, err := c.Subscribe(ctx, "pp")
	if err != nil {
		t.Fatalf("subscribe: %v", err)
	}
	defer sub.Close()
	if _, err := c.Subscribe(ctx, "pp"); !errors.As(err, &limited) {
		t.Fatalf("second subscribe = %v, want ErrRateLimited", err)
	}

	// Rejections are visible in the tenant's own usage counters.
	stats, err := c.Stats(ctx)
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	usage := stats["usage"].(map[string]any)
	if got := usage["rejected_edges"].(float64); got < 2 {
		t.Fatalf("usage.rejected_edges = %v, want >= 2", got)
	}

	// Releasing capacity re-admits: delete the query, register again.
	if err := c.RemoveQuery(ctx, "pp"); err != nil {
		t.Fatalf("remove: %v", err)
	}
	if err := c.AddQuery(ctx, client.QueryRequest{Name: "pp3", Text: pingPong, Window: 10000}); err != nil {
		t.Fatalf("register after release: %v", err)
	}
}

// TestIngestEarlyAbort proves the over-quota NDJSON abort stops
// *reading*: a large body is cut off at the first rejected line, and
// the tenant's bytes-read accounting reflects the cutoff, not the
// Content-Length the request advertised.
func TestIngestEarlyAbort(t *testing.T) {
	reg := tenant.NewRegistry()
	if _, err := reg.Create(tenant.Spec{
		Name:   "capped",
		Keys:   []tenant.KeySpec{{Key: "k-c"}},
		Limits: tenant.Limits{EdgesPerSec: 0.001, EdgeBurst: 1},
	}); err != nil {
		t.Fatalf("create: %v", err)
	}
	srv := server.New(server.Config{Tenants: reg, AdminKey: "root"})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	ctx := testCtx(t)
	c := client.New(ts.URL, nil).WithAPIKey("k-c")

	// ~1.4 MiB of NDJSON: one token admits line 1, line 2 aborts.
	edges := make([]client.Edge, 20000)
	for i := range edges {
		edges[i] = edge(int64(i), int64(i+1), "padpadpadpadpadpadpadpadpadpadpadpad")
	}
	var limited *client.ErrRateLimited
	if _, err := c.Ingest(ctx, edges); !errors.As(err, &limited) {
		t.Fatalf("flood = %v, want ErrRateLimited", err)
	}
	if !strings.Contains(limited.Message, "at line 2") {
		t.Fatalf("abort line = %q, want line 2", limited.Message)
	}

	// The byte ledger is written after the handler returns; poll
	// briefly, then bound it: well under the full body, but not zero.
	admin := client.New(ts.URL, nil).WithAPIKey("root")
	var got int64
	deadline := time.Now().Add(5 * time.Second)
	for {
		tl, err := admin.Tenants(ctx)
		if err != nil {
			t.Fatalf("admin tenants: %v", err)
		}
		if got = tl.Tenants[0].Usage.IngestBytes; got > 0 || time.Now().After(deadline) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if got == 0 || got > 1<<20/2 {
		t.Fatalf("ingest bytes read = %d, want a small prefix of the ~1.4MiB body", got)
	}
}

// TestReadyzGate covers the liveness/readiness split across the whole
// lifecycle: Gate answers during boot, the server while live, and
// readiness flips off at shutdown while liveness stays on.
func TestReadyzGate(t *testing.T) {
	ctx := testCtx(t)

	// Phase 1: the gate alone — the boot window, before the Server
	// exists. Alive, not ready, and every API route refuses with a
	// Retry-After rather than hanging.
	gate := server.NewGate()
	ts := httptest.NewServer(gate)
	defer ts.Close()
	c := client.New(ts.URL, nil)
	if err := c.Health(ctx); err != nil {
		t.Fatalf("healthz during boot: %v", err)
	}
	if err := c.Ready(ctx); statusOf(t, err) != 503 {
		t.Fatalf("readyz during boot = %v, want 503", err)
	}
	resp, err := http.Get(ts.URL + "/queries")
	if err != nil {
		t.Fatalf("api during boot: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != 503 || resp.Header.Get("Retry-After") == "" {
		t.Fatalf("api during boot = %d (Retry-After %q), want 503 with Retry-After",
			resp.StatusCode, resp.Header.Get("Retry-After"))
	}

	// Phase 2: the real handler installs and the same listener serves.
	srv := server.New(server.Config{})
	gate.Set(srv.Handler())
	if err := c.Ready(ctx); err != nil {
		t.Fatalf("readyz after boot: %v", err)
	}
	if _, err := c.Queries(ctx); err != nil {
		t.Fatalf("api after boot: %v", err)
	}

	// Phase 3: shutdown — readiness drops first, liveness holds.
	if err := srv.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if err := c.Ready(ctx); statusOf(t, err) != 503 {
		t.Fatalf("readyz after close = %v, want 503", err)
	}
	if err := c.Health(ctx); err != nil {
		t.Fatalf("healthz after close: %v", err)
	}
}

// TestDefaultTenantCompat: with an anonymous (default) tenant
// configured, clients that predate tenancy — no API key — keep
// working, and the namespacing stays invisible on the wire.
func TestDefaultTenantCompat(t *testing.T) {
	reg := tenant.NewRegistry()
	if _, err := reg.Create(tenant.Spec{Name: "legacy"}); err != nil {
		t.Fatalf("create: %v", err)
	}
	if err := reg.SetAnonymous("legacy"); err != nil {
		t.Fatalf("set anonymous: %v", err)
	}
	srv := server.New(server.Config{Tenants: reg})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	c := client.New(ts.URL, nil) // deliberately no key
	ctx := testCtx(t)

	if err := c.AddQuery(ctx, client.QueryRequest{Name: "pp", Text: pingPong, Window: 100}); err != nil {
		t.Fatalf("anonymous register: %v", err)
	}
	list, err := c.Queries(ctx)
	if err != nil || len(list.Queries) != 1 || list.Queries[0].Name != "pp" {
		t.Fatalf("anonymous list = %+v (%v)", list, err)
	}
	sub, err := c.Subscribe(ctx, "pp")
	if err != nil {
		t.Fatalf("anonymous subscribe: %v", err)
	}
	defer sub.Close()
	if _, err := c.Ingest(ctx, []client.Edge{edge(1, 2, "ping"), edge(2, 1, "pong")}); err != nil {
		t.Fatalf("anonymous ingest: %v", err)
	}
	if m := recvMatch(t, sub); m.Query != "pp" || m.Tenant != "legacy" {
		t.Fatalf("anonymous match = %+v", m)
	}
	if err := c.RemoveQuery(ctx, "pp"); err != nil {
		t.Fatalf("anonymous remove: %v", err)
	}
}

// TestDurableTenantPersistence: a tenant created at runtime through the
// admin API — keys, limits, query ownership — survives a restart into a
// *fresh* registry, restored from the files beside the WAL.
func TestDurableTenantPersistence(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "state")
	ctx := testCtx(t)
	popts := timingsubg.PersistentMultiOptions{Dir: dir, SyncEvery: 1}

	srv1, err := server.NewDurable(server.Config{Tenants: tenant.NewRegistry(), AdminKey: "root"}, popts)
	if err != nil {
		t.Fatalf("open durable: %v", err)
	}
	ts1 := httptest.NewServer(srv1.Handler())
	admin1 := client.New(ts1.URL, nil).WithAPIKey("root")
	if _, err := admin1.CreateTenant(ctx, client.TenantSpec{
		Name:   "acme",
		Keys:   []client.TenantKey{{Key: "k-acme"}},
		Limits: client.TenantLimits{MaxQueries: 3},
	}); err != nil {
		t.Fatalf("create tenant: %v", err)
	}
	acme1 := client.New(ts1.URL, nil).WithAPIKey("k-acme")
	if err := acme1.AddQuery(ctx, client.QueryRequest{Name: "pp", Text: pingPong, Window: 1000}); err != nil {
		t.Fatalf("register: %v", err)
	}
	// Half a match lands before the crash.
	if _, err := acme1.Ingest(ctx, []client.Edge{edge(1, 2, "ping")}); err != nil {
		t.Fatalf("ingest: %v", err)
	}
	ts1.Close() // abandon without a clean Close

	// The restart gets an empty registry: everything about acme must
	// come back from disk.
	srv2, err := server.NewDurable(server.Config{Tenants: tenant.NewRegistry(), AdminKey: "root"}, popts)
	if err != nil {
		t.Fatalf("reopen durable: %v", err)
	}
	defer srv2.Close()
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()

	admin2 := client.New(ts2.URL, nil).WithAPIKey("root")
	tl, err := admin2.Tenants(ctx)
	if err != nil {
		t.Fatalf("tenants after restart: %v", err)
	}
	if len(tl.Tenants) != 1 || tl.Tenants[0].Name != "acme" || tl.Tenants[0].Limits.MaxQueries != 3 {
		t.Fatalf("restored tenants = %+v", tl)
	}
	if tl.Tenants[0].Usage.Queries != 1 {
		t.Fatalf("restored query ownership = %+v, want 1 owned query", tl.Tenants[0].Usage)
	}
	// The persisted key still authenticates, the query is still owned,
	// and the replayed window completes a match with the restart in the
	// middle of the pattern.
	acme2 := client.New(ts2.URL, nil).WithAPIKey("k-acme")
	list, err := acme2.Queries(ctx)
	if err != nil || len(list.Queries) != 1 || list.Queries[0].Name != "pp" || list.Queries[0].Tenant != "acme" {
		t.Fatalf("restored query list = %+v (%v)", list, err)
	}
	sub, err := acme2.Subscribe(ctx, "pp")
	if err != nil {
		t.Fatalf("subscribe after restart: %v", err)
	}
	defer sub.Close()
	if _, err := acme2.Ingest(ctx, []client.Edge{edge(2, 1, "pong")}); err != nil {
		t.Fatalf("ingest after restart: %v", err)
	}
	if m := recvMatch(t, sub); m.Query != "pp" || m.Tenant != "acme" || len(m.Edges) != 2 {
		t.Fatalf("post-restart match = %+v", m)
	}
}

// TestFairShareIsolation floods the work loop with one tenant and
// checks the other's operations still complete promptly: the scheduler
// interleaves by virtual time instead of letting the hot tenant's
// backlog form one long FIFO in front of everyone. Run under -race in
// CI, so bounds are generous.
func TestFairShareIsolation(t *testing.T) {
	reg := tenant.NewRegistry()
	for _, spec := range []tenant.Spec{
		{Name: "hot", Keys: []tenant.KeySpec{{Key: "k-hot"}}},
		{Name: "quiet", Keys: []tenant.KeySpec{{Key: "k-quiet"}}},
	} {
		if _, err := reg.Create(spec); err != nil {
			t.Fatalf("create %s: %v", spec.Name, err)
		}
	}
	srv := server.New(server.Config{Tenants: reg, QueueDepth: 64})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	ctx := testCtx(t)
	hot := client.New(ts.URL, nil).WithAPIKey("k-hot")
	quiet := client.New(ts.URL, nil).WithAPIKey("k-quiet")

	// Register a query per tenant so both sides do real matching work.
	if err := hot.AddQuery(ctx, client.QueryRequest{Name: "pp", Text: pingPong, Window: 1000}); err != nil {
		t.Fatalf("hot register: %v", err)
	}
	if err := quiet.AddQuery(ctx, client.QueryRequest{Name: "pp", Text: pingPong, Window: 1000}); err != nil {
		t.Fatalf("quiet register: %v", err)
	}

	// The flood: several producers shoveling large batches as fast as
	// the server admits them, for the whole duration of the probe.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			batch := make([]client.Edge, 500)
			for {
				select {
				case <-stop:
					return
				default:
				}
				for i := range batch {
					v := int64(g*1000 + i)
					batch[i] = edge(v, v+1, "noise")
				}
				hot.Ingest(ctx, batch) // errors fine: flood pressure is the point
			}
		}(g)
	}
	defer func() { close(stop); wg.Wait() }()

	// The probe: the quiet tenant's small ops, issued while the flood
	// runs. Each must complete well under the time the hot backlog
	// would take end to end.
	time.Sleep(100 * time.Millisecond) // let the flood build a backlog
	var worst time.Duration
	for i := 0; i < 10; i++ {
		start := time.Now()
		if _, err := quiet.Queries(ctx); err != nil {
			t.Fatalf("quiet op %d: %v", i, err)
		}
		if d := time.Since(start); d > worst {
			worst = d
		}
	}
	if worst > 5*time.Second {
		t.Fatalf("quiet tenant's worst op latency = %v under flood, want fair-share isolation", worst)
	}
	t.Logf("quiet tenant worst-case latency under flood: %v", worst)
}
