package server_test

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"timingsubg/client"
	"timingsubg/internal/server"
	"timingsubg/internal/tenant"
)

// BenchmarkTenantIngest measures the control plane's toll on the hot
// path: the same NDJSON ingest workload through the full HTTP stack,
// with tenancy off (the pre-tenancy server) and on (key resolution,
// token-bucket admission per line, fair-share scheduling). The gap
// between the two cells is the per-request price of multi-tenancy.
func BenchmarkTenantIngest(b *testing.B) {
	const batchSize = 256
	run := func(b *testing.B, cfg server.Config, key string) {
		srv := server.New(cfg)
		defer srv.Close()
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()

		// One reusable NDJSON body with server-assigned timestamps, fed
		// via raw HTTP so client-side encoding stays out of the measured
		// path.
		var buf bytes.Buffer
		enc := json.NewEncoder(&buf)
		for i := 0; i < batchSize; i++ {
			v := int64(i)
			if err := enc.Encode(client.Edge{From: v, To: v + 1, FromLabel: "N", ToLabel: "N", Label: "x"}); err != nil {
				b.Fatal(err)
			}
		}
		body := buf.Bytes()

		c := client.New(ts.URL, nil).WithAPIKey(key)
		ctx := b.Context()
		if err := c.AddQuery(ctx, client.QueryRequest{Name: "pp", Text: pingPong, Window: 1000}); err != nil {
			b.Fatalf("register: %v", err)
		}

		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/ingest", bytes.NewReader(body))
			if err != nil {
				b.Fatal(err)
			}
			req.Header.Set("Content-Type", "application/x-ndjson")
			if key != "" {
				req.Header.Set("Authorization", "Bearer "+key)
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				b.Fatal(err)
			}
			var res client.IngestResult
			if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
				b.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != 200 || res.Accepted != batchSize {
				b.Fatalf("ingest = %d %+v", resp.StatusCode, res)
			}
		}
		b.StopTimer()
		b.ReportMetric(float64(b.N*batchSize)/b.Elapsed().Seconds(), "edges/s")
	}

	b.Run("open", func(b *testing.B) {
		run(b, server.Config{}, "")
	})
	b.Run("tenanted", func(b *testing.B) {
		reg := tenant.NewRegistry()
		// Real but non-binding limits, so every admission check runs at
		// full depth without ever rejecting.
		if _, err := reg.Create(tenant.Spec{
			Name:   "bench",
			Keys:   []tenant.KeySpec{{Key: "k-bench"}},
			Limits: tenant.Limits{EdgesPerSec: 1e9, BatchesPerSec: 1e9, MaxQueries: 100, MaxSubscriptions: 100},
		}); err != nil {
			b.Fatal(err)
		}
		run(b, server.Config{Tenants: reg}, "k-bench")
	})
}
