package server

import (
	"sync"
	"sync/atomic"
)

// subscriber is one live SSE consumer. Events arrive pre-serialized, so
// a match published to many subscribers is marshalled once.
type subscriber struct {
	ch chan []byte
}

// hub fans matches out to the subscribers of each query. Publishing
// never blocks the matching engine: a subscriber whose buffer is full
// has the event dropped (and counted) rather than stalling ingest for
// the whole fleet — the load-shedding contract of a serving layer, as
// opposed to the in-process MatchChannel adapter, which prefers
// backpressure over loss because it blocks only its own pipeline.
type hub struct {
	mu        sync.Mutex
	subs      map[string]map[*subscriber]struct{}
	closed    bool
	delivered atomic.Int64
	dropped   atomic.Int64
}

func newHub() *hub {
	return &hub{subs: make(map[string]map[*subscriber]struct{})}
}

// subscribe registers a consumer for the named query. It returns nil if
// the hub is already closed.
func (h *hub) subscribe(query string, buffer int) *subscriber {
	if buffer < 1 {
		buffer = 1
	}
	sub := &subscriber{ch: make(chan []byte, buffer)}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return nil
	}
	set := h.subs[query]
	if set == nil {
		set = make(map[*subscriber]struct{})
		h.subs[query] = set
	}
	set[sub] = struct{}{}
	return sub
}

// unsubscribe detaches a consumer. It is a no-op if the subscriber was
// already detached (e.g. its query was removed).
func (h *hub) unsubscribe(query string, sub *subscriber) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if set, ok := h.subs[query]; ok {
		delete(set, sub)
		if len(set) == 0 {
			delete(h.subs, query)
		}
	}
}

// publish delivers one serialized event to every subscriber of query,
// dropping (and counting) events for subscribers that can't keep up.
func (h *hub) publish(query string, data []byte) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for sub := range h.subs[query] {
		select {
		case sub.ch <- data:
			h.delivered.Add(1)
		default:
			h.dropped.Add(1)
		}
	}
}

// closeQuery ends every subscription of query: their channels close,
// which terminates the SSE handlers cleanly.
func (h *hub) closeQuery(query string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for sub := range h.subs[query] {
		close(sub.ch)
	}
	delete(h.subs, query)
}

// closeAll ends every subscription and rejects future subscribes.
func (h *hub) closeAll() {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	h.closed = true
	for query, set := range h.subs {
		for sub := range set {
			close(sub.ch)
		}
		delete(h.subs, query)
	}
}

// subscribers returns the number of live subscriptions.
func (h *hub) subscribers() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	n := 0
	for _, set := range h.subs {
		n += len(set)
	}
	return n
}
