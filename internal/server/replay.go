package server

import (
	"sync"
)

// ringEvent is one pre-serialized SSE match event with its per-query
// delivery sequence number.
type ringEvent struct {
	seq  int64
	data []byte
}

// replayRing is a fixed-capacity ring of the newest match events of
// one query, in sequence order. It is the server-side half of
// resumable delivery: a reconnecting subscriber's Last-Event-ID maps
// to per-query cursors, events still inside the ring are replayed, and
// the live subscription (attached first, with the same cursors as
// AfterSeq) covers everything after. The ring is fed synchronously by
// the engine's OnDelivery hook, so after a durable restart it is
// rebuilt by recovery replay — with the same sequence numbers the
// pre-crash run assigned — before the server accepts connections.
type replayRing struct {
	buf  []ringEvent
	head int // index of the oldest event
	n    int // live events
}

func newReplayRing(capacity int) *replayRing {
	if capacity < 1 {
		capacity = 1
	}
	return &replayRing{buf: make([]ringEvent, capacity)}
}

// add appends one event, evicting the oldest when full. Events arrive
// in sequence order (per-query publication is serialized).
func (r *replayRing) add(ev ringEvent) {
	if r.n < len(r.buf) {
		r.buf[(r.head+r.n)%len(r.buf)] = ev
		r.n++
		return
	}
	r.buf[r.head] = ev
	r.head = (r.head + 1) % len(r.buf)
}

// since copies out the retained events with seq > after, oldest first.
func (r *replayRing) since(after int64) []ringEvent {
	var out []ringEvent
	for i := 0; i < r.n; i++ {
		ev := r.buf[(r.head+i)%len(r.buf)]
		if ev.seq > after {
			out = append(out, ev)
		}
	}
	return out
}

// replayStore is the per-query ring set. The engine's delivery hook
// writes it from the ingest path (concurrently, on sharded fleets);
// SSE handlers read it once per connection.
type replayStore struct {
	mu       sync.Mutex
	capacity int
	rings    map[string]*replayRing
}

func newReplayStore(capacity int) *replayStore {
	return &replayStore{capacity: capacity, rings: make(map[string]*replayRing)}
}

func (s *replayStore) add(query string, ev ringEvent) {
	s.mu.Lock()
	defer s.mu.Unlock()
	r := s.rings[query]
	if r == nil {
		r = newReplayRing(s.capacity)
		s.rings[query] = r
	}
	r.add(ev)
}

// since returns the retained events of query with seq > after.
func (s *replayStore) since(query string, after int64) []ringEvent {
	s.mu.Lock()
	defer s.mu.Unlock()
	r := s.rings[query]
	if r == nil {
		return nil
	}
	return r.since(after)
}

// queries returns the names with retained events.
func (s *replayStore) queries() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.rings))
	for q := range s.rings {
		out = append(out, q)
	}
	return out
}

// drop discards query's retained events (query retirement: its
// sequence numbers reset, so stale events must not resurface under a
// reused name).
func (s *replayStore) drop(query string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.rings, query)
}
