// Package server is the network serving layer of timingsubg: it hosts a
// dynamic fleet of continuous time-constrained subgraph queries behind
// an HTTP API, turning the library into a standalone service
// (cmd/tsserved). Producers POST batches of timestamped edges, operators
// register and retire queries at runtime without restarting the stream,
// and consumers subscribe to per-query match feeds over SSE.
//
// # Concurrency model
//
// The matching engines follow the paper's single-main-thread dispatch
// model: one edge transaction at a time, in timestamp order. The server
// preserves that by funnelling every mutating operation — ingest
// batches, query registration, query retirement, stat snapshots that
// touch engine internals — through one bounded work queue drained by a
// single loop goroutine. The queue bound is the backpressure mechanism:
// when producers outrun the engine, their requests block in line (and
// eventually time out via their contexts) instead of growing unbounded
// buffers. Pure reads (healthz, subscription fan-out, query listing)
// never enter the queue.
//
// Match delivery rides the engine's own results plane: each SSE
// connection is one timingsubg Engine.Subscribe subscription with a
// query-name filter and the DropOldest overflow policy, so a consumer
// that cannot keep up loses its oldest buffered events (counted in
// server.dropped_events) rather than stalling ingest for the whole
// fleet. Every event carries the engine's per-query delivery sequence
// number; the SSE id line encodes the subscriber's per-query cursors,
// and a reconnecting client presents it as Last-Event-ID to resume —
// events still inside the server's replay ring are re-sent, newer ones
// flow from the live subscription, duplicates are skipped by sequence
// number. Because durable engines re-assign the same sequence numbers
// during recovery replay, resumption composes with server restarts.
//
// # Multi-tenancy
//
// With a tenant registry configured (Config.Tenants), the server runs
// a multi-tenant control plane: API keys resolve to tenants, each
// tenant owns a private query namespace, per-tenant token buckets and
// quotas reject over-limit work with 429 + Retry-After *before* it
// reaches the work queue (admission control — reject, never
// queue-then-drop), and the work queue itself becomes a weighted
// fair-share scheduler so one flooding tenant cannot starve another's
// operations. See tenancy.go. With no registry configured, everything
// above is inert and the wire behavior is identical to a single-tenant
// server.
//
// The wire types live in timingsubg/client, which is also the Go client
// for this API.
package server

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"net/url"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"timingsubg"
	"timingsubg/client"
	"timingsubg/internal/monitor"
	"timingsubg/internal/tenant"
)

// Config tunes a Server.
type Config struct {
	// Labels is the shared label intern table. Nil means a fresh table;
	// pass one to share interning with in-process producers.
	Labels *timingsubg.Labels
	// Routed enables label-based routing for the in-memory fleet (New),
	// so per-edge dispatch cost is proportional to the number of
	// interested queries. NewDurable ignores it: the durable fleet fans
	// out to every query so recovery replay stays deterministic.
	Routed bool
	// Adaptive composes the feedback join-order reoptimizer onto every
	// hosted query engine (see timingsubg.Adaptivity). Composable with
	// both the in-memory and the durable fleet.
	Adaptive *timingsubg.Adaptivity
	// FleetWorkers > 1 shards fleet evaluation across that many workers
	// (see timingsubg.Config.FleetWorkers): each ingest batch is fanned
	// out to the shards concurrently, which is what lets one server
	// host many standing queries at multi-core speed. Composable with
	// every other option; 0 or 1 evaluates sequentially.
	FleetWorkers int
	// SubscriberBuffer is the per-subscriber SSE event buffer (default
	// 256). A subscriber that falls further behind than this loses its
	// oldest buffered events (counted in server.dropped_events).
	SubscriberBuffer int
	// ReplayBuffer is the per-query resume ring: how many recent match
	// events are retained for Last-Event-ID resumption (default:
	// SubscriberBuffer). A reconnect older than the ring loses the
	// overwritten events.
	ReplayBuffer int
	// QueueDepth bounds the serialized work queue (default 128
	// outstanding operations). Producers beyond the bound block — the
	// backpressure contract. With tenancy enabled the bound is per
	// tenant: one backlogged tenant fills only its own slice of the
	// queue.
	QueueDepth int

	// Tenants enables the multi-tenant control plane: API-key auth,
	// per-tenant namespaces, admission control and fair-share
	// scheduling (see the package comment). Nil disables tenancy —
	// every request is the implicit single tenant and the wire
	// behavior is unchanged.
	Tenants *tenant.Registry
	// AdminKey, with Tenants set, is the bearer credential for the
	// POST/GET /tenants admin API; it also grants the full (cross-
	// tenant) view of /queries, /stats and /subscribe. Empty disables
	// the admin API.
	AdminKey string

	// Logger, when non-nil, receives structured request logs (method,
	// path, status, duration) and per-batch ingest accounting at Debug
	// level; slow-op warnings also route through it. Nil keeps the
	// server silent (slow ops then warn on the default slog logger,
	// when a threshold is set).
	Logger *slog.Logger
	// SlowOpThreshold fires a slow-operation report for every feed,
	// batch or synchronous delivery exceeding it (see
	// timingsubg.Config.SlowOpThreshold).
	SlowOpThreshold time.Duration
	// EventTimeUnit declares how edge timestamps map to wallclock (see
	// timingsubg.Config.EventTimeUnit); it enables the event-time lag
	// histogram and watermark lag gauge on GET /metrics.
	EventTimeUnit time.Duration
}

func (c *Config) norm() {
	if c.Labels == nil {
		c.Labels = timingsubg.NewLabels()
	}
	if c.FleetWorkers < 0 {
		// Negative worker counts are rejected by the engine; treat them
		// as "sequential" here so New's no-error contract holds.
		c.FleetWorkers = 0
	}
	if c.SubscriberBuffer <= 0 {
		c.SubscriberBuffer = 256
	}
	if c.ReplayBuffer <= 0 {
		c.ReplayBuffer = c.SubscriberBuffer
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 128
	}
}

// op is one serialized unit of work. ctx is the submitting request's
// context: if it is already dead when the op reaches the front of the
// queue, the op is skipped — the caller was told it failed, so running
// it anyway would make retries double-apply (duplicate ingest batches).
type op struct {
	ctx  context.Context
	fn   func()
	done chan struct{}
}

// queryMeta is the server-side record of one live query: who owns it
// and what it is called on the wire. Internal roster names are never
// string-parsed — this map (keyed by internal name, under qmu) is the
// only translation.
type queryMeta struct {
	tenant string // owning tenant; "" when tenancy is off or unowned
	wire   string // tenant-facing name (= internal name when unowned)
	window int64  // window in wire units
}

// Server hosts one query fleet behind the HTTP API. Create with New or
// NewDurable, mount Handler, and Close on shutdown.
type Server struct {
	cfg      Config
	labels   *timingsubg.Labels
	fl       timingsubg.Fleet
	replay   *replayStore
	reg      *monitor.Registry
	tenants  *tenant.Registry // nil = tenancy disabled
	adminKey string
	// sched is the bounded work queue: one flow per tenant, weighted
	// start-time fair queueing on the drain side, so admission and
	// service are both isolated per tenant. Untenanted servers run one
	// flow ("") and behave like a plain bounded FIFO.
	sched    *tenant.Sched[op]
	stopped  chan struct{}
	loopDone chan struct{}
	closer   sync.Once
	closeErr error

	qmu     sync.RWMutex
	queries map[string]queryMeta // internal query name → meta

	queryDir string // query registration directory; "" when not durable
	stateDir string // durability root (label table home); "" when not durable
	// persistedLabels is the intern-table size already snapshotted to
	// disk; loop-owned once the server runs.
	persistedLabels int
	lastTime        int64 // stream clock; loop-owned once the server runs
	ingested        atomic.Int64
	mux             http.Handler
}

// New returns a server over a fresh in-memory dynamic fleet. Matching
// state lives and dies with the process; see NewDurable for the
// WAL-backed variant.
func New(cfg Config) *Server {
	cfg.norm()
	s := newServer(cfg)
	fl, err := timingsubg.OpenFleet(timingsubg.Config{
		Dynamic:         true,
		Routed:          cfg.Routed,
		Adaptive:        cfg.Adaptive,
		FleetWorkers:    cfg.FleetWorkers,
		EventTimeUnit:   cfg.EventTimeUnit,
		SlowOpThreshold: cfg.SlowOpThreshold,
		OnSlowOp:        s.slowOp(),
		OnDelivery:      s.record,
	})
	if err != nil {
		// Unreachable: an empty dynamic in-memory config cannot fail.
		panic(err)
	}
	s.fl = fl
	s.finish()
	return s
}

// NewDurable returns a server whose fleet journals every ingested edge
// through the write-ahead log in opts.Dir and checkpoints each query's
// window, so a killed and restarted server recovers its queries (from
// the registry under Dir/queries), its window state and its stream
// clock, then continues matching. Delivery across a restart is
// at-least-once.
func NewDurable(cfg Config, opts timingsubg.PersistentMultiOptions) (*Server, error) {
	cfg.norm()
	s := newServer(cfg)
	s.queryDir = filepath.Join(opts.Dir, "queries")
	s.stateDir = opts.Dir

	// Restore the label intern table before anything re-interns: WAL
	// records and checkpoints reference label IDs, so the string→ID
	// assignment must match the previous run exactly.
	if err := loadLabels(s.stateDir, s.labels); err != nil {
		return nil, err
	}
	s.persistedLabels = s.labels.Len()

	// Tenants created at runtime through the admin API are durable too;
	// restore them before queries so owners exist when their queries
	// load. The operator's static tenants file wins over a stale
	// persisted spec of the same name.
	if s.tenants != nil {
		if err := loadTenants(filepath.Join(s.stateDir, "tenants"), s.tenants, s.sched); err != nil {
			return nil, err
		}
	}

	reqs, err := LoadQueries(s.queryDir)
	if err != nil {
		return nil, err
	}
	specs := make([]timingsubg.QuerySpec, 0, len(reqs))
	for _, req := range reqs {
		spec, err := ParseQueryRequest(req, s.labels)
		if err != nil {
			return nil, fmt.Errorf("server: persisted %w", err)
		}
		// The internal roster name is derived from the recorded owner,
		// never from the current tenancy mode: checkpoint directories and
		// replay rings are keyed by it, so it must be identical across
		// restarts even if tenancy was toggled in between.
		internal := req.Name
		if req.Tenant != "" {
			internal = req.Tenant + ":" + req.Name
		}
		meta := queryMeta{tenant: req.Tenant, wire: req.Name, window: req.Window}
		if s.tenants == nil {
			// Tenancy off: the roster is addressed verbatim, so a scoped
			// name IS the wire name and nobody owns it.
			meta.tenant, meta.wire = "", internal
		} else if req.Tenant != "" {
			owner, ok := s.tenants.Get(req.Tenant)
			if !ok {
				// Durable state outlives a tenants file that dropped the
				// owner: re-register it key-less and unlimited so its
				// queries keep matching (unreachable by credential until
				// the admin re-adds keys).
				owner, err = s.tenants.Create(tenant.Spec{Name: req.Tenant})
				if err != nil {
					return nil, fmt.Errorf("server: restore owner of query %q: %w", req.Name, err)
				}
				s.sched.SetWeight(owner.Name(), owner.Weight())
			}
			// Recovered queries count toward the quota gauge but are never
			// dropped for exceeding a since-tightened MaxQueries.
			owner.RestoreQuery()
			spec.Group = req.Tenant
		}
		spec.Name = internal
		specs = append(specs, spec)
		s.queries[internal] = meta
	}
	fl, err := timingsubg.OpenFleet(timingsubg.Config{
		Queries:         specs,
		Dynamic:         true,
		Adaptive:        cfg.Adaptive,
		FleetWorkers:    cfg.FleetWorkers,
		EventTimeUnit:   cfg.EventTimeUnit,
		SlowOpThreshold: cfg.SlowOpThreshold,
		OnSlowOp:        s.slowOp(),
		Durable: &timingsubg.Durability{
			Dir:             opts.Dir,
			CheckpointEvery: opts.CheckpointEvery,
			SyncEvery:       opts.SyncEvery,
			SyncInterval:    opts.SyncInterval,
			SegmentBytes:    opts.SegmentBytes,
		},
		// OnDelivery is installed before recovery, so WAL replay rebuilds
		// the resume rings with the pre-crash sequence numbers.
		OnDelivery: s.record,
	})
	if err != nil {
		return nil, err
	}
	s.fl = fl
	if lt := fl.Stats().LastTime; lt > 0 {
		s.lastTime = int64(lt)
	}
	s.finish()
	return s, nil
}

func newServer(cfg Config) *Server {
	s := &Server{
		cfg:      cfg,
		labels:   cfg.Labels,
		replay:   newReplayStore(cfg.ReplayBuffer),
		reg:      monitor.NewRegistry(),
		tenants:  cfg.Tenants,
		adminKey: cfg.AdminKey,
		sched:    tenant.NewSched[op](cfg.QueueDepth),
		stopped:  make(chan struct{}),
		loopDone: make(chan struct{}),
		queries:  make(map[string]queryMeta),
	}
	if s.tenants != nil {
		for _, name := range s.tenants.Names() {
			if t, ok := s.tenants.Get(name); ok {
				s.sched.SetWeight(name, t.Weight())
			}
		}
	}
	return s
}

// finish wires metrics and routes once the fleet exists, then starts
// the work loop.
func (s *Server) finish() {
	s.reg.MustRegister("server.ingested", func() any { return s.ingested.Load() })
	s.reg.MustRegister("server.last_time", func() any { return s.lastTime })
	s.reg.MustRegister("server.queries", func() any { return len(s.fl.Names()) })
	// Subscription accounting comes from the engine's own results
	// plane (each SSE connection is one Engine.Subscribe subscription),
	// through the counter fast path — no stats snapshot per gauge.
	s.reg.MustRegister("server.subscribers", func() any {
		subs, _, _ := timingsubg.SubscriptionCounters(s.fl)
		return subs
	})
	s.reg.MustRegister("server.delivered_events", func() any {
		_, delivered, _ := timingsubg.SubscriptionCounters(s.fl)
		return delivered
	})
	s.reg.MustRegister("server.dropped_events", func() any {
		_, _, dropped := timingsubg.SubscriptionCounters(s.fl)
		return dropped
	})
	s.reg.MustRegister("server.queue_depth", func() any { return s.sched.Len() })
	if s.tenants != nil {
		// The tenant-sliced view of the control plane: admission and
		// ownership counters per tenant, for the monitor/stats plane.
		s.reg.MustRegister("server.tenants", func() any {
			out := make(map[string]tenant.Usage)
			for _, name := range s.tenants.Names() {
				if t, ok := s.tenants.Get(name); ok {
					out[name] = t.Usage()
				}
			}
			return out
		})
	}
	// Fleet gauges derive generically from the unified Stats snapshot —
	// no per-façade wiring. "fleet.stats" is the whole snapshot (the
	// primary contract, self-describing and dynamic-roster-safe); the
	// scalar gauges are kept for scrapers that want flat metrics and
	// sample the counter-only FastStats so a scrape doesn't walk
	// partial-match state once per gauge on the op loop.
	s.reg.MustRegister("fleet.stats", func() any { return clientStats(s.fl.Stats()) })
	s.reg.MustRegister("fleet.matches", func() any {
		st := timingsubg.FastStats(s.fl)
		out := make(map[string]int64, len(st.Queries))
		for name, qs := range st.Queries {
			out[name] = qs.Matches
		}
		return out
	})
	// No flat space gauge: partial-match walks run exactly once per
	// scrape, inside "fleet.stats" (which carries space_bytes).
	probe := timingsubg.FastStats(s.fl)
	if s.cfg.Routed && !probe.Durable {
		// The durable fleet broadcasts (NewDurable ignores Routed), so
		// a routed-fraction gauge there would report a misleading 1.
		s.reg.MustRegister("fleet.routed_fraction", func() any { return timingsubg.FastStats(s.fl).RoutedFraction })
	}
	if probe.Durable {
		s.reg.MustRegister("fleet.wal_seq", func() any { return timingsubg.FastStats(s.fl).WALSeq })
		s.reg.MustRegister("fleet.replayed", func() any { return timingsubg.FastStats(s.fl).Replayed })
	}

	mux := http.NewServeMux()
	mux.HandleFunc("POST /queries", s.handleAddQuery)
	mux.HandleFunc("GET /queries", s.handleListQueries)
	mux.HandleFunc("DELETE /queries/{name}", s.handleRemoveQuery)
	mux.HandleFunc("POST /ingest", s.handleIngest)
	mux.HandleFunc("GET /subscribe", s.handleSubscribe)
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("GET /metrics", s.handleProm)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("POST /tenants", s.handleCreateTenant)
	mux.HandleFunc("GET /tenants", s.handleListTenants)
	s.mux = mux
	if s.cfg.Logger != nil {
		s.mux = requestLog(s.cfg.Logger, mux)
	}

	go s.run()
}

// slowOp returns the engine slow-operation hook: route reports through
// the configured logger, or nil to keep the engine's default (a
// default-logger slog warning).
func (s *Server) slowOp() func(timingsubg.SlowOp) {
	log := s.cfg.Logger
	if log == nil {
		return nil
	}
	return func(op timingsubg.SlowOp) {
		log.Warn("slow op",
			"op", op.Op, "query", op.Query, "edges", op.Edges,
			"total", op.Total, "wal", op.WAL, "fanout", op.Fanout)
	}
}

// statusWriter captures the response status for the request log.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// Flush forwards to the underlying writer so SSE streaming keeps
// working behind the logging wrapper.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// requestLog is the structured access-log middleware: one Info line per
// request with method, path, status and wall time.
func requestLog(log *slog.Logger, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		next.ServeHTTP(sw, r)
		log.Info("request",
			"method", r.Method, "path", r.URL.Path,
			"status", sw.status, "duration", time.Since(start))
	})
}

// Handler returns the server's HTTP API.
func (s *Server) Handler() http.Handler { return s.mux }

// run drains the work queue; it is the single goroutine that touches
// engine state. The scheduler hands it the queued flow with the least
// virtual service, and each executed op is charged back at its
// measured wall time — that pair is what makes the loop fair-share:
// over any busy interval, each backlogged tenant's ops get loop time
// proportional to the tenant's weight.
func (s *Server) run() {
	defer close(s.loopDone)
	for {
		o, flow, ok := s.sched.Next()
		if !ok {
			return // closed and drained
		}
		if o.ctx.Err() == nil {
			start := time.Now()
			o.fn()
			s.sched.Charge(flow, time.Since(start))
		}
		close(o.done)
	}
}

// errClosed reports an operation submitted after Close.
var errClosed = errors.New("server: closed")

// do runs fn on the work loop as the nil tenant (internal work, or a
// request on an untenanted server).
func (s *Server) do(ctx context.Context, fn func()) error {
	return s.doAs(ctx, nil, fn)
}

// doAs submits fn to t's fair-share flow and waits for the loop to run
// it. Submission blocks while the flow's slice of the bounded queue is
// full — that is the backpressure path, and it is per tenant: another
// tenant's backlog never blocks this Submit — and gives up when ctx
// expires.
func (s *Server) doAs(ctx context.Context, t *tenant.Tenant, fn func()) error {
	o := op{ctx: ctx, fn: fn, done: make(chan struct{})}
	if err := s.sched.Submit(ctx, t.Name(), o); err != nil {
		if errors.Is(err, tenant.ErrSchedClosed) {
			return errClosed
		}
		return err
	}
	select {
	case <-o.done:
		return nil
	case <-ctx.Done():
		// The loop sees the dead ctx and skips the op when it surfaces;
		// Close drains every admitted op, so done always closes.
		return ctx.Err()
	}
}

// Close stops the work loop and shuts the fleet down (checkpointing
// it, in durable mode); closing the fleet ends every SSE subscription
// through the engine's results plane. It is safe to call more than
// once.
func (s *Server) Close() error {
	s.closer.Do(func() {
		close(s.stopped)
		// Closing the scheduler rejects new submissions and lets the
		// loop drain the ops already admitted, so their callers unblock.
		s.sched.Close()
		<-s.loopDone
		s.closeErr = s.fl.Close()
	})
	return s.closeErr
}

// persistLabels snapshots the intern table if it has grown since the
// last snapshot. Durable-mode ops call it before the first WAL append
// or query-file write that could reference a newly interned ID. Only
// the work loop calls it.
func (s *Server) persistLabels() error {
	if s.stateDir == "" {
		return nil
	}
	n := s.labels.Len()
	if n == s.persistedLabels {
		return nil
	}
	if err := saveLabels(s.stateDir, s.labels); err != nil {
		return err
	}
	s.persistedLabels = n
	return nil
}

// clientStats converts the engine's unified snapshot to its wire form.
func clientStats(st timingsubg.Stats) client.EngineStats {
	out := client.EngineStats{
		Matches:         st.Matches,
		Discarded:       st.Discarded,
		Fed:             st.Fed,
		InWindow:        st.InWindow,
		PartialMatches:  st.PartialMatches,
		SpaceBytes:      st.SpaceBytes,
		LastTime:        int64(st.LastTime),
		JoinScanned:     st.JoinScanned,
		JoinCandidates:  st.JoinCandidates,
		ExpiryBatches:   st.ExpiryBatches,
		ExpiryEvicted:   st.ExpiryEvicted,
		K:               st.K,
		Reoptimizations: st.Reoptimizations,
		WALSeq:          st.WALSeq,
		WALSyncs:        st.WALSyncs,
		Replayed:        st.Replayed,
		RoutedFraction:  st.RoutedFraction,
		FleetWorkers:    st.FleetWorkers,
		ShardMembers:    st.ShardMembers,
		ShardBusyNs:     st.ShardBusyNs,

		Subscriptions:         st.Subscriptions,
		SubscriptionDelivered: st.SubscriptionDelivered,
		SubscriptionDropped:   st.SubscriptionDropped,

		WatermarkLagNs: st.WatermarkLagNs,

		Adaptive: st.Adaptive,
		Durable:  st.Durable,
		Fleet:    st.Fleet,
	}
	if st.Stages != nil {
		out.Stages = &client.StageStats{
			Ingest:       clientLatency(st.Stages.Ingest),
			WALAppend:    clientLatency(st.Stages.WALAppend),
			WALSync:      clientLatency(st.Stages.WALSync),
			GroupCommit:  clientLatency(st.Stages.GroupCommit),
			QueueWait:    clientLatency(st.Stages.QueueWait),
			ShardExec:    clientLatency(st.Stages.ShardExec),
			Join:         clientLatency(st.Stages.Join),
			Expiry:       clientLatency(st.Stages.Expiry),
			Dispatch:     clientLatency(st.Stages.Dispatch),
			Detection:    clientLatency(st.Stages.Detection),
			EventTimeLag: clientLatency(st.Stages.EventTimeLag),
		}
	}
	if st.Detection != nil {
		d := clientLatency(*st.Detection)
		out.Detection = &d
	}
	if len(st.Queries) > 0 {
		out.Queries = make(map[string]client.EngineStats, len(st.Queries))
		for name, qs := range st.Queries {
			out.Queries[name] = clientStats(qs)
		}
	}
	if len(st.Groups) > 0 {
		out.Groups = make(map[string]client.EngineStats, len(st.Groups))
		for name, gs := range st.Groups {
			out.Groups[name] = clientStats(gs)
		}
	}
	return out
}

// clientLatency converts one latency summary to its wire form.
func clientLatency(s timingsubg.LatencySnapshot) client.LatencySnapshot {
	return client.LatencySnapshot{
		Count: s.Count,
		Sum:   int64(s.Sum),
		Mean:  int64(s.Mean),
		P50:   int64(s.P50),
		P90:   int64(s.P90),
		P99:   int64(s.P99),
		P999:  int64(s.P999),
		Max:   int64(s.Max),
	}
}

// record is the engine's synchronous delivery hook: serialize the
// match event once and retain it in the per-query resume ring. Live
// fan-out happens on the engine side (each SSE handler holds its own
// subscription); the ring exists only so Last-Event-ID resumption can
// re-send recent events after a reconnect or a durable restart.
func (s *Server) record(dv timingsubg.Delivery) {
	data, err := json.Marshal(s.matchEvent(dv))
	if err != nil {
		return // unreachable: MatchEvent is marshal-safe by construction
	}
	s.replay.add(dv.Query, ringEvent{seq: dv.Seq, data: data})
}

// matchEvent converts one engine delivery to its wire form. The
// query's internal roster name is translated back to the owner's wire
// name (plus the owning tenant, so an admin firehose stream stays
// unambiguous when two tenants use the same wire name).
func (s *Server) matchEvent(dv timingsubg.Delivery) client.MatchEvent {
	m := dv.Match
	wire, owner := dv.Query, ""
	s.qmu.RLock()
	if meta, ok := s.queries[dv.Query]; ok {
		wire, owner = meta.wire, meta.tenant
	}
	s.qmu.RUnlock()
	ev := client.MatchEvent{Query: wire, Tenant: owner, Seq: dv.Seq, Edges: make([]client.MatchEdge, len(m.Edges))}
	for i, e := range m.Edges {
		ev.Edges[i] = client.MatchEdge{
			ID:   int64(e.ID),
			From: int64(e.From),
			To:   int64(e.To),
			Time: int64(e.Time),
		}
		if e.EdgeLabel != timingsubg.NoLabel {
			ev.Edges[i].Label = s.labels.String(e.EdgeLabel)
		}
	}
	return ev
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	http.Error(w, fmt.Sprintf(format, args...), code)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func (s *Server) handleAddQuery(w http.ResponseWriter, r *http.Request) {
	t, ok := s.authTenant(w, r, tenant.RoleWrite)
	if !ok {
		return
	}
	var req client.QueryRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad query request: %v", err)
		return
	}
	// Ownership is the credential's, never the request body's.
	req.Tenant = t.Name()
	spec, err := ParseQueryRequest(req, s.labels)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	internal := s.scopedName(t, req.Name)
	spec.Name = internal
	// Group = owning tenant: the engine aggregates the tenant's members
	// into Stats.Groups[tenant], including the group-wide detection
	// histogram ("" — untenanted — declares no group).
	spec.Group = t.Name()
	// Quota admission happens before the work queue, like all admission.
	if !t.AcquireQuery() {
		rateLimited(w, 0, "tenant %q: query quota exceeded (max %d)", t.Name(), t.Limits().MaxQueries)
		return
	}
	var opErr error
	status := http.StatusCreated
	err = s.doAs(r.Context(), t, func() {
		if s.fl.HasQuery(internal) {
			status = http.StatusConflict
			opErr = fmt.Errorf("query %q already registered", req.Name)
			return
		}
		// Labels the query text interned must hit disk before any state
		// that references their IDs (query file, checkpoints).
		if opErr = s.persistLabels(); opErr != nil {
			status = http.StatusInternalServerError
			return
		}
		if opErr = s.fl.AddQuery(spec); opErr != nil {
			status = http.StatusBadRequest
			return
		}
		if s.queryDir != "" {
			if err := saveQueryFile(s.queryDir, internal, req); err != nil {
				// The query is live but would not survive a restart;
				// surface that as a server error and roll it back.
				s.fl.RemoveQuery(internal)
				status = http.StatusInternalServerError
				opErr = err
				return
			}
		}
		s.qmu.Lock()
		s.queries[internal] = queryMeta{tenant: t.Name(), wire: req.Name, window: req.Window}
		s.qmu.Unlock()
	})
	if err != nil {
		t.ReleaseQuery()
		httpError(w, http.StatusServiceUnavailable, "%v", err)
		return
	}
	if opErr != nil {
		t.ReleaseQuery()
		httpError(w, status, "%v", opErr)
		return
	}
	writeJSON(w, status, client.QueryInfo{Name: req.Name, Tenant: t.Name(), Window: req.Window})
}

func (s *Server) handleRemoveQuery(w http.ResponseWriter, r *http.Request) {
	t, ok := s.authTenant(w, r, tenant.RoleWrite)
	if !ok {
		return
	}
	wire := r.PathValue("name")
	internal := s.scopedName(t, wire)
	var opErr error
	var owner string
	status := http.StatusNoContent
	err := s.doAs(r.Context(), t, func() {
		// Cross-tenant deletion is rejected by construction: a foreign
		// query's internal name is outside the caller's prefix, so the
		// lookup below cannot see it (404, same as a nonexistent name —
		// existence itself is namespaced).
		if !s.fl.HasQuery(internal) {
			status = http.StatusNotFound
			opErr = fmt.Errorf("unknown query %q", wire)
			return
		}
		if opErr = s.fl.RemoveQuery(internal); opErr != nil {
			status = http.StatusInternalServerError
			return
		}
		if s.queryDir != "" {
			if err := removeQueryFile(s.queryDir, internal); err != nil {
				status = http.StatusInternalServerError
				opErr = err
				return
			}
		}
		s.qmu.Lock()
		owner = s.queries[internal].tenant
		delete(s.queries, internal)
		s.qmu.Unlock()
		// The engine already ended the subscriptions filtered to this
		// name and reset its delivery sequence; drop the resume ring so
		// stale events cannot resurface under a reused name.
		s.replay.drop(internal)
	})
	if err != nil {
		httpError(w, http.StatusServiceUnavailable, "%v", err)
		return
	}
	if opErr != nil {
		httpError(w, status, "%v", opErr)
		return
	}
	// Return the owner's quota slot (the admin may be deleting on a
	// tenant's behalf, so resolve the recorded owner, not the caller).
	if s.tenants != nil && owner != "" {
		if ot, ok := s.tenants.Get(owner); ok {
			ot.ReleaseQuery()
		}
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleListQueries(w http.ResponseWriter, r *http.Request) {
	t, ok := s.authTenant(w, r, tenant.RoleRead)
	if !ok {
		return
	}
	names := s.fl.Names()
	s.qmu.RLock()
	list := client.QueryList{Queries: make([]client.QueryInfo, 0, len(names))}
	for _, n := range names {
		meta, known := s.queries[n]
		if !known {
			meta = queryMeta{wire: n}
		}
		if t != nil && meta.tenant != t.Name() {
			continue // another tenant's — invisible, not just forbidden
		}
		name := n // admin and untenanted callers see roster names
		if t != nil {
			name = meta.wire
		}
		list.Queries = append(list.Queries, client.QueryInfo{Name: name, Tenant: meta.tenant, Window: meta.window})
	}
	s.qmu.RUnlock()
	writeJSON(w, http.StatusOK, list)
}

// ingestLine is one decoded NDJSON line with labels already interned —
// decode and interning run off the work loop (the intern table is
// concurrency-safe), so the serialized section does only engine work.
type ingestLine struct {
	line     int
	edge     timingsubg.Edge
	autoTime bool
}

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	t, ok := s.authTenant(w, r, tenant.RoleWrite)
	if !ok {
		return
	}
	// Admission control runs here, before anything is read or queued:
	// an over-limit request is rejected while it is still cheap — never
	// admitted to the bounded work queue and then dropped. One POST
	// costs one batch token, charged up front and not refunded (see
	// tenant.AdmitBatch on why refunds would hide the limit).
	if ok, wait := t.AdmitBatch(); !ok {
		rateLimited(w, time.Duration(wait), "tenant %q: batch rate limit exceeded", t.Name())
		return
	}
	var res client.IngestResult
	var batch []ingestLine
	body := &countingReader{r: r.Body}
	defer func() { t.AddIngestBytes(body.n) }()
	sc := bufio.NewScanner(http.MaxBytesReader(w, body, 64<<20))
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line, taken := 0, 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		// One edge token per non-empty line, charged before the line is
		// even parsed. On exhaustion: stop reading immediately — the rest
		// of the body never comes off the wire, and bytes-read accounting
		// reflects that — refund the tokens this request took (nothing
		// will be fed, so a retry after Retry-After can admit the same
		// batch) and answer 429.
		if ok, wait := t.AdmitEdge(); !ok {
			t.RefundEdges(taken)
			rateLimited(w, time.Duration(wait),
				"tenant %q: edge rate limit exceeded at line %d (%d bytes read, nothing ingested)",
				t.Name(), line, body.n)
			return
		}
		taken++
		var e client.Edge
		if err := json.Unmarshal(raw, &e); err != nil {
			res.Rejected++
			res.Errors = append(res.Errors, client.IngestError{Line: line, Message: err.Error()})
			continue
		}
		if e.Time < 0 {
			res.Rejected++
			res.Errors = append(res.Errors, client.IngestError{Line: line, Message: "time must be non-negative"})
			continue
		}
		batch = append(batch, ingestLine{
			line: line,
			edge: timingsubg.Edge{
				From:      timingsubg.VertexID(e.From),
				To:        timingsubg.VertexID(e.To),
				FromLabel: s.labels.Intern(e.FromLabel),
				ToLabel:   s.labels.Intern(e.ToLabel),
				EdgeLabel: s.labels.Intern(e.Label),
				Time:      timingsubg.Timestamp(e.Time),
			},
			autoTime: e.Time == 0,
		})
	}
	if err := sc.Err(); err != nil {
		httpError(w, http.StatusBadRequest, "read ingest body: %v", err)
		return
	}

	var opErr error
	err := s.doAs(r.Context(), t, func() {
		// Any label this batch interned must hit disk before the first
		// WAL append that references its ID.
		if opErr = s.persistLabels(); opErr != nil {
			return
		}
		// Resolve timestamps against the stream clock first, so the
		// whole batch can ride the engine's FeedBatch fast path (one
		// WAL write and sync, one fleet lock) instead of per-edge Feed.
		edges := make([]timingsubg.Edge, 0, len(batch))
		lines := make([]int, 0, len(batch))
		clock := s.lastTime
		for _, item := range batch {
			e := item.edge
			if item.autoTime {
				e.Time = timingsubg.Timestamp(clock + 1) // server-assigned tick
			} else if int64(e.Time) <= clock {
				res.Rejected++
				res.Errors = append(res.Errors, client.IngestError{
					Line:    item.line,
					Message: fmt.Sprintf("out of order: time %d after %d (timestamps must be strictly increasing)", e.Time, clock),
				})
				continue
			}
			clock = int64(e.Time)
			edges = append(edges, e)
			lines = append(lines, item.line)
		}
		// FeedBatch stops at the first failing edge; reject that line
		// and resume with the rest so one bad edge cannot shadow the
		// batch's tail (the per-line accounting contract). Only
		// ErrOutOfOrder is a per-edge fault; anything else (WAL write
		// failure, checkpoint failure) is a server-side error — it must
		// surface as a 5xx, not masquerade as a bad line.
		off := 0
		for off < len(edges) {
			n, ferr := s.fl.FeedBatch(edges[off:])
			if n > 0 {
				s.lastTime = int64(edges[off+n-1].Time)
				res.Accepted += n
				s.ingested.Add(int64(n))
			}
			if ferr == nil {
				break
			}
			if off+n >= len(edges) || !errors.Is(ferr, timingsubg.ErrOutOfOrder) {
				opErr = ferr
				return
			}
			res.Rejected++
			res.Errors = append(res.Errors, client.IngestError{Line: lines[off+n], Message: ferr.Error()})
			off += n + 1
		}
	})
	if err != nil {
		httpError(w, http.StatusServiceUnavailable, "%v", err)
		return
	}
	if opErr != nil {
		httpError(w, http.StatusInternalServerError, "%v", opErr)
		return
	}
	if log := s.cfg.Logger; log != nil {
		log.Debug("ingest", "accepted", res.Accepted, "rejected", res.Rejected)
	}
	writeJSON(w, http.StatusOK, res)
}

// subscribeNames extracts the query filter of a subscribe request.
// ?query=a is verbatim and repeatable — the machine-safe form, since
// query names may legally contain commas; ?queries=a,b is the
// comma-separated human convenience (repeatable too). Empty means
// every query, current and future.
func subscribeNames(r *http.Request) []string {
	var names []string
	seen := map[string]bool{}
	add := func(name string) {
		if name != "" && !seen[name] {
			seen[name] = true
			names = append(names, name)
		}
	}
	q := r.URL.Query()
	for _, name := range q["query"] {
		add(name)
	}
	for _, list := range q["queries"] {
		for _, name := range strings.Split(list, ",") {
			add(strings.TrimSpace(name))
		}
	}
	return names
}

// parseResumeToken decodes a Last-Event-ID header into per-query
// resume cursors. The token is the URL-encoded form the server itself
// emits on every event's id line (query names escaped, values are the
// per-query delivery sequence numbers), so it is self-contained: the
// client never parses it, only echoes the last one it saw.
func parseResumeToken(token string) (map[string]int64, error) {
	if token == "" {
		return nil, nil
	}
	vals, err := url.ParseQuery(token)
	if err != nil {
		return nil, fmt.Errorf("bad Last-Event-ID %q: %v", token, err)
	}
	out := make(map[string]int64, len(vals))
	for name, ss := range vals {
		if len(ss) == 0 {
			continue
		}
		n, err := strconv.ParseInt(ss[len(ss)-1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad Last-Event-ID cursor for %q: %v", name, err)
		}
		out[name] = n
	}
	return out, nil
}

// resumeToken is parseResumeToken's inverse: the id line emitted with
// every event, carrying the subscriber's full per-query high-water
// map so any single event id is a complete resume point.
func resumeToken(high map[string]int64) string {
	vals := make(url.Values, len(high))
	for name, seq := range high {
		vals.Set(name, strconv.FormatInt(seq, 10))
	}
	return vals.Encode()
}

// handleSubscribe is one SSE consumer: an Engine.Subscribe
// subscription (query-name filter, DropOldest overflow) bridged onto
// the HTTP response, preceded by a replay of ring events the
// Last-Event-ID cursor proves the client has not seen.
func (s *Server) handleSubscribe(w http.ResponseWriter, r *http.Request) {
	t, ok := s.authTenant(w, r, tenant.RoleRead)
	if !ok {
		return
	}
	wireNames := subscribeNames(r)
	names := make([]string, len(wireNames))
	for i, wire := range wireNames {
		// A foreign query's internal name is outside the caller's
		// namespace, so cross-tenant subscription fails here exactly like
		// a nonexistent name.
		names[i] = s.scopedName(t, wire)
		if !s.fl.HasQuery(names[i]) {
			httpError(w, http.StatusNotFound, "unknown query %q", wireNames[i])
			return
		}
	}
	// An unfiltered stream from a tenant is scoped to its namespace —
	// the tenant's own queries, current AND future — by prefix, which
	// the dispatcher evaluates per event (it follows the roster).
	prefix := ""
	if t != nil && len(names) == 0 {
		prefix = t.Name() + ":"
	}
	after, err := parseResumeToken(r.Header.Get("Last-Event-ID"))
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		httpError(w, http.StatusInternalServerError, "streaming unsupported by connection")
		return
	}
	if !t.AcquireSubscription() {
		rateLimited(w, 0, "tenant %q: subscription quota exceeded (max %d)",
			t.Name(), t.Limits().MaxSubscriptions)
		return
	}
	defer t.ReleaseSubscription()
	// The live subscription attaches before the ring is read, with the
	// client's cursors as AfterSeq: an event published in between lands
	// in both and is emitted once (the high-water check below), an
	// event published before sits only in the ring, an event after only
	// in the subscription. DropOldest keeps one stalled consumer from
	// ever blocking ingest.
	sub, err := s.fl.Subscribe(timingsubg.SubscribeOptions{
		Queries:  names,
		Prefix:   prefix,
		Buffer:   s.cfg.SubscriberBuffer,
		Policy:   timingsubg.DropOldest,
		AfterSeq: after,
	})
	if err != nil {
		httpError(w, http.StatusServiceUnavailable, "server shutting down")
		return
	}
	defer sub.Cancel()
	// Re-check after subscribing: a DELETE racing in between would have
	// retired its subscriptions before ours attached, leaving a
	// filtered subscription bound to dead names — an endless silent
	// stream, or a feed of a future query that reuses the name.
	if len(names) > 0 {
		live := false
		for _, name := range names {
			if s.fl.HasQuery(name) {
				live = true
				break
			}
		}
		if !live {
			httpError(w, http.StatusNotFound, "no live query among %v", wireNames)
			return
		}
	}

	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	fmt.Fprintf(w, ": subscribed queries=%s\n\n", strings.Join(wireNames, ","))

	high := make(map[string]int64, len(after))
	for name, seq := range after {
		high[name] = seq
	}
	emit := func(query string, seq int64, data []byte) bool {
		if seq <= high[query] {
			return true // already sent (replayed event also live-delivered)
		}
		high[query] = seq
		_, werr := fmt.Fprintf(w, "id: %s\nevent: match\ndata: %s\n\n", resumeToken(high), data)
		return werr == nil
	}

	// Replay: ring events newer than the client's cursors. Only on
	// resume — a request with no Last-Event-ID starts from now, per SSE
	// convention (a client that wants retained history can present
	// explicit zero cursors, e.g. "pp=0").
	if after != nil {
		replayNames := names
		if len(replayNames) == 0 {
			replayNames = s.replay.queries()
			if prefix != "" {
				kept := replayNames[:0]
				for _, name := range replayNames {
					if strings.HasPrefix(name, prefix) {
						kept = append(kept, name)
					}
				}
				replayNames = kept
			}
		}
		for _, name := range replayNames {
			for _, ev := range s.replay.since(name, high[name]) {
				if !emit(name, ev.seq, ev.data) {
					return
				}
			}
		}
	}
	flusher.Flush()

	// Live: the engine subscription, until it ends (query retired,
	// server closing) or the client goes away.
	for {
		select {
		case dv, ok := <-sub.C():
			if !ok {
				return // filtered queries retired, or server closing
			}
			data, err := json.Marshal(s.matchEvent(dv))
			if err != nil {
				return // unreachable: MatchEvent is marshal-safe
			}
			if !emit(dv.Query, dv.Seq, data) {
				return
			}
			flusher.Flush()
		case <-r.Context().Done():
			return
		case <-s.stopped:
			// Long-lived streams must not hold up graceful shutdown:
			// http.Server.Shutdown waits for every handler to return.
			return
		}
	}
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	t, ok := s.authTenant(w, r, tenant.RoleRead)
	if !ok {
		return
	}
	// A tenant gets its own slice: usage, group aggregate, per-query
	// snapshots. The full registry view is for admins (and the
	// untenanted server, where everything belongs to everyone).
	if t != nil {
		s.handleTenantStats(w, r, t)
		return
	}
	// Sampling runs on the work loop so engine-internal gauges (space
	// bytes, partial-match walks) never race an in-flight edge
	// transaction; the registry supplies the metric set.
	var payload map[string]any
	var status int
	var msg string
	err := s.do(r.Context(), func() {
		if m := r.URL.Query().Get("metric"); m != "" {
			v, ok := s.reg.Sample(m)
			if !ok {
				status, msg = http.StatusNotFound, fmt.Sprintf("unknown metric %q", m)
				return
			}
			payload = map[string]any{m: v}
			return
		}
		payload = s.reg.Snapshot()
	})
	if err != nil {
		httpError(w, http.StatusServiceUnavailable, "%v", err)
		return
	}
	if status != 0 {
		httpError(w, status, "%s", msg)
		return
	}
	writeJSON(w, http.StatusOK, payload)
}

// handleHealthz is pure liveness: 200 for as long as the process can
// answer at all, even while shutting down. Whether the server should
// receive traffic is /readyz's question.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, client.Health{Status: "ok"})
}

// handleReadyz is readiness: 200 only while the server is accepting
// work. It flips to 503 the moment shutdown begins, so load balancers
// drain ahead of the listener closing. The other not-ready window —
// boot, while durable recovery replays the WAL — is covered by Gate,
// which answers for these paths before the Server exists.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	select {
	case <-s.stopped:
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, client.Health{Status: "shutting-down"})
	default:
		writeJSON(w, http.StatusOK, client.Health{Status: "ready"})
	}
}

// LastTime returns the server's stream clock (for tests and embedding).
func (s *Server) LastTime() timingsubg.Timestamp {
	return timingsubg.Timestamp(s.lastTime)
}

// EngineStats returns the hosted fleet's counter-only snapshot — the
// hook for embedders and the tsserved shutdown summary. Safe to call
// while the server runs; the walking fields stay zero.
func (s *Server) EngineStats() timingsubg.Stats {
	return timingsubg.FastStats(s.fl)
}
