// Package server is the network serving layer of timingsubg: it hosts a
// dynamic fleet of continuous time-constrained subgraph queries behind
// an HTTP API, turning the library into a standalone service
// (cmd/tsserved). Producers POST batches of timestamped edges, operators
// register and retire queries at runtime without restarting the stream,
// and consumers subscribe to per-query match feeds over SSE.
//
// # Concurrency model
//
// The matching engines follow the paper's single-main-thread dispatch
// model: one edge transaction at a time, in timestamp order. The server
// preserves that by funnelling every mutating operation — ingest
// batches, query registration, query retirement, stat snapshots that
// touch engine internals — through one bounded work queue drained by a
// single loop goroutine. The queue bound is the backpressure mechanism:
// when producers outrun the engine, their requests block in line (and
// eventually time out via their contexts) instead of growing unbounded
// buffers. Pure reads (healthz, subscription fan-out, query listing)
// never enter the queue.
//
// Match delivery rides the engine's own results plane: each SSE
// connection is one timingsubg Engine.Subscribe subscription with a
// query-name filter and the DropOldest overflow policy, so a consumer
// that cannot keep up loses its oldest buffered events (counted in
// server.dropped_events) rather than stalling ingest for the whole
// fleet. Every event carries the engine's per-query delivery sequence
// number; the SSE id line encodes the subscriber's per-query cursors,
// and a reconnecting client presents it as Last-Event-ID to resume —
// events still inside the server's replay ring are re-sent, newer ones
// flow from the live subscription, duplicates are skipped by sequence
// number. Because durable engines re-assign the same sequence numbers
// during recovery replay, resumption composes with server restarts.
//
// The wire types live in timingsubg/client, which is also the Go client
// for this API.
package server

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"net/url"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"timingsubg"
	"timingsubg/client"
	"timingsubg/internal/monitor"
)

// Config tunes a Server.
type Config struct {
	// Labels is the shared label intern table. Nil means a fresh table;
	// pass one to share interning with in-process producers.
	Labels *timingsubg.Labels
	// Routed enables label-based routing for the in-memory fleet (New),
	// so per-edge dispatch cost is proportional to the number of
	// interested queries. NewDurable ignores it: the durable fleet fans
	// out to every query so recovery replay stays deterministic.
	Routed bool
	// Adaptive composes the feedback join-order reoptimizer onto every
	// hosted query engine (see timingsubg.Adaptivity). Composable with
	// both the in-memory and the durable fleet.
	Adaptive *timingsubg.Adaptivity
	// FleetWorkers > 1 shards fleet evaluation across that many workers
	// (see timingsubg.Config.FleetWorkers): each ingest batch is fanned
	// out to the shards concurrently, which is what lets one server
	// host many standing queries at multi-core speed. Composable with
	// every other option; 0 or 1 evaluates sequentially.
	FleetWorkers int
	// SubscriberBuffer is the per-subscriber SSE event buffer (default
	// 256). A subscriber that falls further behind than this loses its
	// oldest buffered events (counted in server.dropped_events).
	SubscriberBuffer int
	// ReplayBuffer is the per-query resume ring: how many recent match
	// events are retained for Last-Event-ID resumption (default:
	// SubscriberBuffer). A reconnect older than the ring loses the
	// overwritten events.
	ReplayBuffer int
	// QueueDepth bounds the serialized work queue (default 128
	// outstanding operations). Producers beyond the bound block — the
	// backpressure contract.
	QueueDepth int

	// Logger, when non-nil, receives structured request logs (method,
	// path, status, duration) and per-batch ingest accounting at Debug
	// level; slow-op warnings also route through it. Nil keeps the
	// server silent (slow ops then warn on the default slog logger,
	// when a threshold is set).
	Logger *slog.Logger
	// SlowOpThreshold fires a slow-operation report for every feed,
	// batch or synchronous delivery exceeding it (see
	// timingsubg.Config.SlowOpThreshold).
	SlowOpThreshold time.Duration
	// EventTimeUnit declares how edge timestamps map to wallclock (see
	// timingsubg.Config.EventTimeUnit); it enables the event-time lag
	// histogram and watermark lag gauge on GET /metrics.
	EventTimeUnit time.Duration
}

func (c *Config) norm() {
	if c.Labels == nil {
		c.Labels = timingsubg.NewLabels()
	}
	if c.FleetWorkers < 0 {
		// Negative worker counts are rejected by the engine; treat them
		// as "sequential" here so New's no-error contract holds.
		c.FleetWorkers = 0
	}
	if c.SubscriberBuffer <= 0 {
		c.SubscriberBuffer = 256
	}
	if c.ReplayBuffer <= 0 {
		c.ReplayBuffer = c.SubscriberBuffer
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 128
	}
}

// op is one serialized unit of work. ctx is the submitting request's
// context: if it is already dead when the op reaches the front of the
// queue, the op is skipped — the caller was told it failed, so running
// it anyway would make retries double-apply (duplicate ingest batches).
type op struct {
	ctx  context.Context
	fn   func()
	done chan struct{}
}

// Server hosts one query fleet behind the HTTP API. Create with New or
// NewDurable, mount Handler, and Close on shutdown.
type Server struct {
	cfg      Config
	labels   *timingsubg.Labels
	fl       timingsubg.Fleet
	replay   *replayStore
	reg      *monitor.Registry
	ops      chan op
	stopped  chan struct{}
	loopDone chan struct{}
	closer   sync.Once
	closeErr error

	qmu     sync.RWMutex
	windows map[string]int64 // live query name → window (wire units)

	queryDir string // query registration directory; "" when not durable
	stateDir string // durability root (label table home); "" when not durable
	// persistedLabels is the intern-table size already snapshotted to
	// disk; loop-owned once the server runs.
	persistedLabels int
	lastTime        int64 // stream clock; loop-owned once the server runs
	ingested        atomic.Int64
	mux             http.Handler
}

// New returns a server over a fresh in-memory dynamic fleet. Matching
// state lives and dies with the process; see NewDurable for the
// WAL-backed variant.
func New(cfg Config) *Server {
	cfg.norm()
	s := newServer(cfg)
	fl, err := timingsubg.OpenFleet(timingsubg.Config{
		Dynamic:         true,
		Routed:          cfg.Routed,
		Adaptive:        cfg.Adaptive,
		FleetWorkers:    cfg.FleetWorkers,
		EventTimeUnit:   cfg.EventTimeUnit,
		SlowOpThreshold: cfg.SlowOpThreshold,
		OnSlowOp:        s.slowOp(),
		OnDelivery:      s.record,
	})
	if err != nil {
		// Unreachable: an empty dynamic in-memory config cannot fail.
		panic(err)
	}
	s.fl = fl
	s.finish()
	return s
}

// NewDurable returns a server whose fleet journals every ingested edge
// through the write-ahead log in opts.Dir and checkpoints each query's
// window, so a killed and restarted server recovers its queries (from
// the registry under Dir/queries), its window state and its stream
// clock, then continues matching. Delivery across a restart is
// at-least-once.
func NewDurable(cfg Config, opts timingsubg.PersistentMultiOptions) (*Server, error) {
	cfg.norm()
	s := newServer(cfg)
	s.queryDir = filepath.Join(opts.Dir, "queries")
	s.stateDir = opts.Dir

	// Restore the label intern table before anything re-interns: WAL
	// records and checkpoints reference label IDs, so the string→ID
	// assignment must match the previous run exactly.
	if err := loadLabels(s.stateDir, s.labels); err != nil {
		return nil, err
	}
	s.persistedLabels = s.labels.Len()

	reqs, err := LoadQueries(s.queryDir)
	if err != nil {
		return nil, err
	}
	specs := make([]timingsubg.QuerySpec, 0, len(reqs))
	for _, req := range reqs {
		spec, err := ParseQueryRequest(req, s.labels)
		if err != nil {
			return nil, fmt.Errorf("server: persisted %w", err)
		}
		specs = append(specs, spec)
		s.windows[req.Name] = req.Window
	}
	fl, err := timingsubg.OpenFleet(timingsubg.Config{
		Queries:         specs,
		Dynamic:         true,
		Adaptive:        cfg.Adaptive,
		FleetWorkers:    cfg.FleetWorkers,
		EventTimeUnit:   cfg.EventTimeUnit,
		SlowOpThreshold: cfg.SlowOpThreshold,
		OnSlowOp:        s.slowOp(),
		Durable: &timingsubg.Durability{
			Dir:             opts.Dir,
			CheckpointEvery: opts.CheckpointEvery,
			SyncEvery:       opts.SyncEvery,
			SegmentBytes:    opts.SegmentBytes,
		},
		// OnDelivery is installed before recovery, so WAL replay rebuilds
		// the resume rings with the pre-crash sequence numbers.
		OnDelivery: s.record,
	})
	if err != nil {
		return nil, err
	}
	s.fl = fl
	if lt := fl.Stats().LastTime; lt > 0 {
		s.lastTime = int64(lt)
	}
	s.finish()
	return s, nil
}

func newServer(cfg Config) *Server {
	return &Server{
		cfg:      cfg,
		labels:   cfg.Labels,
		replay:   newReplayStore(cfg.ReplayBuffer),
		reg:      monitor.NewRegistry(),
		ops:      make(chan op, cfg.QueueDepth),
		stopped:  make(chan struct{}),
		loopDone: make(chan struct{}),
		windows:  make(map[string]int64),
	}
}

// finish wires metrics and routes once the fleet exists, then starts
// the work loop.
func (s *Server) finish() {
	s.reg.MustRegister("server.ingested", func() any { return s.ingested.Load() })
	s.reg.MustRegister("server.last_time", func() any { return s.lastTime })
	s.reg.MustRegister("server.queries", func() any { return len(s.fl.Names()) })
	// Subscription accounting comes from the engine's own results
	// plane (each SSE connection is one Engine.Subscribe subscription),
	// through the counter fast path — no stats snapshot per gauge.
	s.reg.MustRegister("server.subscribers", func() any {
		subs, _, _ := timingsubg.SubscriptionCounters(s.fl)
		return subs
	})
	s.reg.MustRegister("server.delivered_events", func() any {
		_, delivered, _ := timingsubg.SubscriptionCounters(s.fl)
		return delivered
	})
	s.reg.MustRegister("server.dropped_events", func() any {
		_, _, dropped := timingsubg.SubscriptionCounters(s.fl)
		return dropped
	})
	s.reg.MustRegister("server.queue_depth", func() any { return len(s.ops) })
	// Fleet gauges derive generically from the unified Stats snapshot —
	// no per-façade wiring. "fleet.stats" is the whole snapshot (the
	// primary contract, self-describing and dynamic-roster-safe); the
	// scalar gauges are kept for scrapers that want flat metrics and
	// sample the counter-only FastStats so a scrape doesn't walk
	// partial-match state once per gauge on the op loop.
	s.reg.MustRegister("fleet.stats", func() any { return clientStats(s.fl.Stats()) })
	s.reg.MustRegister("fleet.matches", func() any {
		st := timingsubg.FastStats(s.fl)
		out := make(map[string]int64, len(st.Queries))
		for name, qs := range st.Queries {
			out[name] = qs.Matches
		}
		return out
	})
	// No flat space gauge: partial-match walks run exactly once per
	// scrape, inside "fleet.stats" (which carries space_bytes).
	probe := timingsubg.FastStats(s.fl)
	if s.cfg.Routed && !probe.Durable {
		// The durable fleet broadcasts (NewDurable ignores Routed), so
		// a routed-fraction gauge there would report a misleading 1.
		s.reg.MustRegister("fleet.routed_fraction", func() any { return timingsubg.FastStats(s.fl).RoutedFraction })
	}
	if probe.Durable {
		s.reg.MustRegister("fleet.wal_seq", func() any { return timingsubg.FastStats(s.fl).WALSeq })
		s.reg.MustRegister("fleet.replayed", func() any { return timingsubg.FastStats(s.fl).Replayed })
	}

	mux := http.NewServeMux()
	mux.HandleFunc("POST /queries", s.handleAddQuery)
	mux.HandleFunc("GET /queries", s.handleListQueries)
	mux.HandleFunc("DELETE /queries/{name}", s.handleRemoveQuery)
	mux.HandleFunc("POST /ingest", s.handleIngest)
	mux.HandleFunc("GET /subscribe", s.handleSubscribe)
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("GET /metrics", s.handleProm)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux = mux
	if s.cfg.Logger != nil {
		s.mux = requestLog(s.cfg.Logger, mux)
	}

	go s.run()
}

// slowOp returns the engine slow-operation hook: route reports through
// the configured logger, or nil to keep the engine's default (a
// default-logger slog warning).
func (s *Server) slowOp() func(timingsubg.SlowOp) {
	log := s.cfg.Logger
	if log == nil {
		return nil
	}
	return func(op timingsubg.SlowOp) {
		log.Warn("slow op",
			"op", op.Op, "query", op.Query, "edges", op.Edges,
			"total", op.Total, "wal", op.WAL, "fanout", op.Fanout)
	}
}

// statusWriter captures the response status for the request log.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// Flush forwards to the underlying writer so SSE streaming keeps
// working behind the logging wrapper.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// requestLog is the structured access-log middleware: one Info line per
// request with method, path, status and wall time.
func requestLog(log *slog.Logger, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		next.ServeHTTP(sw, r)
		log.Info("request",
			"method", r.Method, "path", r.URL.Path,
			"status", sw.status, "duration", time.Since(start))
	})
}

// Handler returns the server's HTTP API.
func (s *Server) Handler() http.Handler { return s.mux }

// run drains the work queue; it is the single goroutine that touches
// engine state.
func (s *Server) run() {
	defer close(s.loopDone)
	exec := func(o op) {
		if o.ctx.Err() == nil {
			o.fn()
		}
		close(o.done)
	}
	for {
		select {
		case o := <-s.ops:
			exec(o)
		case <-s.stopped:
			// Finish operations already admitted to the queue so their
			// callers unblock, then stop.
			for {
				select {
				case o := <-s.ops:
					exec(o)
				default:
					return
				}
			}
		}
	}
}

// errClosed reports an operation submitted after Close.
var errClosed = errors.New("server: closed")

// do runs fn on the work loop and waits for it. Submission blocks while
// the bounded queue is full — that is the backpressure path — and gives
// up when ctx expires.
func (s *Server) do(ctx context.Context, fn func()) error {
	o := op{ctx: ctx, fn: fn, done: make(chan struct{})}
	select {
	case s.ops <- o:
	case <-ctx.Done():
		return ctx.Err()
	case <-s.stopped:
		return errClosed
	}
	select {
	case <-o.done:
		return nil
	case <-ctx.Done():
		// The loop sees the dead ctx and skips the op when it reaches
		// the front of the queue.
		return ctx.Err()
	case <-s.stopped:
		// The loop's final drain may already have passed when this op
		// was buffered, in which case done will never close. Once the
		// loop has fully exited, "did it run" has a definitive answer.
		<-s.loopDone
		select {
		case <-o.done:
			return nil
		default:
			return errClosed
		}
	}
}

// Close stops the work loop and shuts the fleet down (checkpointing
// it, in durable mode); closing the fleet ends every SSE subscription
// through the engine's results plane. It is safe to call more than
// once.
func (s *Server) Close() error {
	s.closer.Do(func() {
		close(s.stopped)
		<-s.loopDone
		s.closeErr = s.fl.Close()
	})
	return s.closeErr
}

// persistLabels snapshots the intern table if it has grown since the
// last snapshot. Durable-mode ops call it before the first WAL append
// or query-file write that could reference a newly interned ID. Only
// the work loop calls it.
func (s *Server) persistLabels() error {
	if s.stateDir == "" {
		return nil
	}
	n := s.labels.Len()
	if n == s.persistedLabels {
		return nil
	}
	if err := saveLabels(s.stateDir, s.labels); err != nil {
		return err
	}
	s.persistedLabels = n
	return nil
}

// clientStats converts the engine's unified snapshot to its wire form.
func clientStats(st timingsubg.Stats) client.EngineStats {
	out := client.EngineStats{
		Matches:         st.Matches,
		Discarded:       st.Discarded,
		Fed:             st.Fed,
		InWindow:        st.InWindow,
		PartialMatches:  st.PartialMatches,
		SpaceBytes:      st.SpaceBytes,
		LastTime:        int64(st.LastTime),
		JoinScanned:     st.JoinScanned,
		JoinCandidates:  st.JoinCandidates,
		K:               st.K,
		Reoptimizations: st.Reoptimizations,
		WALSeq:          st.WALSeq,
		Replayed:        st.Replayed,
		RoutedFraction:  st.RoutedFraction,
		FleetWorkers:    st.FleetWorkers,
		ShardMembers:    st.ShardMembers,

		Subscriptions:         st.Subscriptions,
		SubscriptionDelivered: st.SubscriptionDelivered,
		SubscriptionDropped:   st.SubscriptionDropped,

		WatermarkLagNs: st.WatermarkLagNs,

		Adaptive: st.Adaptive,
		Durable:  st.Durable,
		Fleet:    st.Fleet,
	}
	if st.Stages != nil {
		out.Stages = &client.StageStats{
			Ingest:       clientLatency(st.Stages.Ingest),
			WALAppend:    clientLatency(st.Stages.WALAppend),
			WALSync:      clientLatency(st.Stages.WALSync),
			QueueWait:    clientLatency(st.Stages.QueueWait),
			ShardExec:    clientLatency(st.Stages.ShardExec),
			Join:         clientLatency(st.Stages.Join),
			Expiry:       clientLatency(st.Stages.Expiry),
			Dispatch:     clientLatency(st.Stages.Dispatch),
			Detection:    clientLatency(st.Stages.Detection),
			EventTimeLag: clientLatency(st.Stages.EventTimeLag),
		}
	}
	if st.Detection != nil {
		d := clientLatency(*st.Detection)
		out.Detection = &d
	}
	if len(st.Queries) > 0 {
		out.Queries = make(map[string]client.EngineStats, len(st.Queries))
		for name, qs := range st.Queries {
			out.Queries[name] = clientStats(qs)
		}
	}
	return out
}

// clientLatency converts one latency summary to its wire form.
func clientLatency(s timingsubg.LatencySnapshot) client.LatencySnapshot {
	return client.LatencySnapshot{
		Count: s.Count,
		Sum:   int64(s.Sum),
		Mean:  int64(s.Mean),
		P50:   int64(s.P50),
		P90:   int64(s.P90),
		P99:   int64(s.P99),
		P999:  int64(s.P999),
		Max:   int64(s.Max),
	}
}

// record is the engine's synchronous delivery hook: serialize the
// match event once and retain it in the per-query resume ring. Live
// fan-out happens on the engine side (each SSE handler holds its own
// subscription); the ring exists only so Last-Event-ID resumption can
// re-send recent events after a reconnect or a durable restart.
func (s *Server) record(dv timingsubg.Delivery) {
	data, err := json.Marshal(s.matchEvent(dv))
	if err != nil {
		return // unreachable: MatchEvent is marshal-safe by construction
	}
	s.replay.add(dv.Query, ringEvent{seq: dv.Seq, data: data})
}

// matchEvent converts one engine delivery to its wire form.
func (s *Server) matchEvent(dv timingsubg.Delivery) client.MatchEvent {
	m := dv.Match
	ev := client.MatchEvent{Query: dv.Query, Seq: dv.Seq, Edges: make([]client.MatchEdge, len(m.Edges))}
	for i, e := range m.Edges {
		ev.Edges[i] = client.MatchEdge{
			ID:   int64(e.ID),
			From: int64(e.From),
			To:   int64(e.To),
			Time: int64(e.Time),
		}
		if e.EdgeLabel != timingsubg.NoLabel {
			ev.Edges[i].Label = s.labels.String(e.EdgeLabel)
		}
	}
	return ev
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	http.Error(w, fmt.Sprintf(format, args...), code)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func (s *Server) handleAddQuery(w http.ResponseWriter, r *http.Request) {
	var req client.QueryRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad query request: %v", err)
		return
	}
	spec, err := ParseQueryRequest(req, s.labels)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	var opErr error
	status := http.StatusCreated
	err = s.do(r.Context(), func() {
		if s.fl.HasQuery(req.Name) {
			status = http.StatusConflict
			opErr = fmt.Errorf("query %q already registered", req.Name)
			return
		}
		// Labels the query text interned must hit disk before any state
		// that references their IDs (query file, checkpoints).
		if opErr = s.persistLabels(); opErr != nil {
			status = http.StatusInternalServerError
			return
		}
		if opErr = s.fl.AddQuery(spec); opErr != nil {
			status = http.StatusBadRequest
			return
		}
		if s.queryDir != "" {
			if err := saveQueryFile(s.queryDir, req); err != nil {
				// The query is live but would not survive a restart;
				// surface that as a server error and roll it back.
				s.fl.RemoveQuery(req.Name)
				status = http.StatusInternalServerError
				opErr = err
				return
			}
		}
		s.qmu.Lock()
		s.windows[req.Name] = req.Window
		s.qmu.Unlock()
	})
	if err != nil {
		httpError(w, http.StatusServiceUnavailable, "%v", err)
		return
	}
	if opErr != nil {
		httpError(w, status, "%v", opErr)
		return
	}
	writeJSON(w, status, client.QueryInfo{Name: req.Name, Window: req.Window})
}

func (s *Server) handleRemoveQuery(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	var opErr error
	status := http.StatusNoContent
	err := s.do(r.Context(), func() {
		if !s.fl.HasQuery(name) {
			status = http.StatusNotFound
			opErr = fmt.Errorf("unknown query %q", name)
			return
		}
		if opErr = s.fl.RemoveQuery(name); opErr != nil {
			status = http.StatusInternalServerError
			return
		}
		if s.queryDir != "" {
			if err := removeQueryFile(s.queryDir, name); err != nil {
				status = http.StatusInternalServerError
				opErr = err
				return
			}
		}
		s.qmu.Lock()
		delete(s.windows, name)
		s.qmu.Unlock()
		// The engine already ended the subscriptions filtered to this
		// name and reset its delivery sequence; drop the resume ring so
		// stale events cannot resurface under a reused name.
		s.replay.drop(name)
	})
	if err != nil {
		httpError(w, http.StatusServiceUnavailable, "%v", err)
		return
	}
	if opErr != nil {
		httpError(w, status, "%v", opErr)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleListQueries(w http.ResponseWriter, r *http.Request) {
	names := s.fl.Names()
	s.qmu.RLock()
	list := client.QueryList{Queries: make([]client.QueryInfo, 0, len(names))}
	for _, n := range names {
		list.Queries = append(list.Queries, client.QueryInfo{Name: n, Window: s.windows[n]})
	}
	s.qmu.RUnlock()
	writeJSON(w, http.StatusOK, list)
}

// ingestLine is one decoded NDJSON line with labels already interned —
// decode and interning run off the work loop (the intern table is
// concurrency-safe), so the serialized section does only engine work.
type ingestLine struct {
	line     int
	edge     timingsubg.Edge
	autoTime bool
}

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	var res client.IngestResult
	var batch []ingestLine
	sc := bufio.NewScanner(http.MaxBytesReader(w, r.Body, 64<<20))
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var e client.Edge
		if err := json.Unmarshal(raw, &e); err != nil {
			res.Rejected++
			res.Errors = append(res.Errors, client.IngestError{Line: line, Message: err.Error()})
			continue
		}
		if e.Time < 0 {
			res.Rejected++
			res.Errors = append(res.Errors, client.IngestError{Line: line, Message: "time must be non-negative"})
			continue
		}
		batch = append(batch, ingestLine{
			line: line,
			edge: timingsubg.Edge{
				From:      timingsubg.VertexID(e.From),
				To:        timingsubg.VertexID(e.To),
				FromLabel: s.labels.Intern(e.FromLabel),
				ToLabel:   s.labels.Intern(e.ToLabel),
				EdgeLabel: s.labels.Intern(e.Label),
				Time:      timingsubg.Timestamp(e.Time),
			},
			autoTime: e.Time == 0,
		})
	}
	if err := sc.Err(); err != nil {
		httpError(w, http.StatusBadRequest, "read ingest body: %v", err)
		return
	}

	var opErr error
	err := s.do(r.Context(), func() {
		// Any label this batch interned must hit disk before the first
		// WAL append that references its ID.
		if opErr = s.persistLabels(); opErr != nil {
			return
		}
		// Resolve timestamps against the stream clock first, so the
		// whole batch can ride the engine's FeedBatch fast path (one
		// WAL write and sync, one fleet lock) instead of per-edge Feed.
		edges := make([]timingsubg.Edge, 0, len(batch))
		lines := make([]int, 0, len(batch))
		clock := s.lastTime
		for _, item := range batch {
			e := item.edge
			if item.autoTime {
				e.Time = timingsubg.Timestamp(clock + 1) // server-assigned tick
			} else if int64(e.Time) <= clock {
				res.Rejected++
				res.Errors = append(res.Errors, client.IngestError{
					Line:    item.line,
					Message: fmt.Sprintf("out of order: time %d after %d (timestamps must be strictly increasing)", e.Time, clock),
				})
				continue
			}
			clock = int64(e.Time)
			edges = append(edges, e)
			lines = append(lines, item.line)
		}
		// FeedBatch stops at the first failing edge; reject that line
		// and resume with the rest so one bad edge cannot shadow the
		// batch's tail (the per-line accounting contract). Only
		// ErrOutOfOrder is a per-edge fault; anything else (WAL write
		// failure, checkpoint failure) is a server-side error — it must
		// surface as a 5xx, not masquerade as a bad line.
		off := 0
		for off < len(edges) {
			n, ferr := s.fl.FeedBatch(edges[off:])
			if n > 0 {
				s.lastTime = int64(edges[off+n-1].Time)
				res.Accepted += n
				s.ingested.Add(int64(n))
			}
			if ferr == nil {
				break
			}
			if off+n >= len(edges) || !errors.Is(ferr, timingsubg.ErrOutOfOrder) {
				opErr = ferr
				return
			}
			res.Rejected++
			res.Errors = append(res.Errors, client.IngestError{Line: lines[off+n], Message: ferr.Error()})
			off += n + 1
		}
	})
	if err != nil {
		httpError(w, http.StatusServiceUnavailable, "%v", err)
		return
	}
	if opErr != nil {
		httpError(w, http.StatusInternalServerError, "%v", opErr)
		return
	}
	if log := s.cfg.Logger; log != nil {
		log.Debug("ingest", "accepted", res.Accepted, "rejected", res.Rejected)
	}
	writeJSON(w, http.StatusOK, res)
}

// subscribeNames extracts the query filter of a subscribe request.
// ?query=a is verbatim and repeatable — the machine-safe form, since
// query names may legally contain commas; ?queries=a,b is the
// comma-separated human convenience (repeatable too). Empty means
// every query, current and future.
func subscribeNames(r *http.Request) []string {
	var names []string
	seen := map[string]bool{}
	add := func(name string) {
		if name != "" && !seen[name] {
			seen[name] = true
			names = append(names, name)
		}
	}
	q := r.URL.Query()
	for _, name := range q["query"] {
		add(name)
	}
	for _, list := range q["queries"] {
		for _, name := range strings.Split(list, ",") {
			add(strings.TrimSpace(name))
		}
	}
	return names
}

// parseResumeToken decodes a Last-Event-ID header into per-query
// resume cursors. The token is the URL-encoded form the server itself
// emits on every event's id line (query names escaped, values are the
// per-query delivery sequence numbers), so it is self-contained: the
// client never parses it, only echoes the last one it saw.
func parseResumeToken(token string) (map[string]int64, error) {
	if token == "" {
		return nil, nil
	}
	vals, err := url.ParseQuery(token)
	if err != nil {
		return nil, fmt.Errorf("bad Last-Event-ID %q: %v", token, err)
	}
	out := make(map[string]int64, len(vals))
	for name, ss := range vals {
		if len(ss) == 0 {
			continue
		}
		n, err := strconv.ParseInt(ss[len(ss)-1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad Last-Event-ID cursor for %q: %v", name, err)
		}
		out[name] = n
	}
	return out, nil
}

// resumeToken is parseResumeToken's inverse: the id line emitted with
// every event, carrying the subscriber's full per-query high-water
// map so any single event id is a complete resume point.
func resumeToken(high map[string]int64) string {
	vals := make(url.Values, len(high))
	for name, seq := range high {
		vals.Set(name, strconv.FormatInt(seq, 10))
	}
	return vals.Encode()
}

// handleSubscribe is one SSE consumer: an Engine.Subscribe
// subscription (query-name filter, DropOldest overflow) bridged onto
// the HTTP response, preceded by a replay of ring events the
// Last-Event-ID cursor proves the client has not seen.
func (s *Server) handleSubscribe(w http.ResponseWriter, r *http.Request) {
	names := subscribeNames(r)
	for _, name := range names {
		if !s.fl.HasQuery(name) {
			httpError(w, http.StatusNotFound, "unknown query %q", name)
			return
		}
	}
	after, err := parseResumeToken(r.Header.Get("Last-Event-ID"))
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		httpError(w, http.StatusInternalServerError, "streaming unsupported by connection")
		return
	}
	// The live subscription attaches before the ring is read, with the
	// client's cursors as AfterSeq: an event published in between lands
	// in both and is emitted once (the high-water check below), an
	// event published before sits only in the ring, an event after only
	// in the subscription. DropOldest keeps one stalled consumer from
	// ever blocking ingest.
	sub, err := s.fl.Subscribe(timingsubg.SubscribeOptions{
		Queries:  names,
		Buffer:   s.cfg.SubscriberBuffer,
		Policy:   timingsubg.DropOldest,
		AfterSeq: after,
	})
	if err != nil {
		httpError(w, http.StatusServiceUnavailable, "server shutting down")
		return
	}
	defer sub.Cancel()
	// Re-check after subscribing: a DELETE racing in between would have
	// retired its subscriptions before ours attached, leaving a
	// filtered subscription bound to dead names — an endless silent
	// stream, or a feed of a future query that reuses the name.
	if len(names) > 0 {
		live := false
		for _, name := range names {
			if s.fl.HasQuery(name) {
				live = true
				break
			}
		}
		if !live {
			httpError(w, http.StatusNotFound, "no live query among %v", names)
			return
		}
	}

	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	fmt.Fprintf(w, ": subscribed queries=%s\n\n", strings.Join(names, ","))

	high := make(map[string]int64, len(after))
	for name, seq := range after {
		high[name] = seq
	}
	emit := func(query string, seq int64, data []byte) bool {
		if seq <= high[query] {
			return true // already sent (replayed event also live-delivered)
		}
		high[query] = seq
		_, werr := fmt.Fprintf(w, "id: %s\nevent: match\ndata: %s\n\n", resumeToken(high), data)
		return werr == nil
	}

	// Replay: ring events newer than the client's cursors. Only on
	// resume — a request with no Last-Event-ID starts from now, per SSE
	// convention (a client that wants retained history can present
	// explicit zero cursors, e.g. "pp=0").
	if after != nil {
		replayNames := names
		if len(replayNames) == 0 {
			replayNames = s.replay.queries()
		}
		for _, name := range replayNames {
			for _, ev := range s.replay.since(name, high[name]) {
				if !emit(name, ev.seq, ev.data) {
					return
				}
			}
		}
	}
	flusher.Flush()

	// Live: the engine subscription, until it ends (query retired,
	// server closing) or the client goes away.
	for {
		select {
		case dv, ok := <-sub.C():
			if !ok {
				return // filtered queries retired, or server closing
			}
			data, err := json.Marshal(s.matchEvent(dv))
			if err != nil {
				return // unreachable: MatchEvent is marshal-safe
			}
			if !emit(dv.Query, dv.Seq, data) {
				return
			}
			flusher.Flush()
		case <-r.Context().Done():
			return
		case <-s.stopped:
			// Long-lived streams must not hold up graceful shutdown:
			// http.Server.Shutdown waits for every handler to return.
			return
		}
	}
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	// Sampling runs on the work loop so engine-internal gauges (space
	// bytes, partial-match walks) never race an in-flight edge
	// transaction; the registry supplies the metric set.
	var payload map[string]any
	var status int
	var msg string
	err := s.do(r.Context(), func() {
		if m := r.URL.Query().Get("metric"); m != "" {
			v, ok := s.reg.Sample(m)
			if !ok {
				status, msg = http.StatusNotFound, fmt.Sprintf("unknown metric %q", m)
				return
			}
			payload = map[string]any{m: v}
			return
		}
		payload = s.reg.Snapshot()
	})
	if err != nil {
		httpError(w, http.StatusServiceUnavailable, "%v", err)
		return
	}
	if status != 0 {
		httpError(w, status, "%s", msg)
		return
	}
	writeJSON(w, http.StatusOK, payload)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, client.Health{Status: "ok"})
}

// LastTime returns the server's stream clock (for tests and embedding).
func (s *Server) LastTime() timingsubg.Timestamp {
	return timingsubg.Timestamp(s.lastTime)
}

// EngineStats returns the hosted fleet's counter-only snapshot — the
// hook for embedders and the tsserved shutdown summary. Safe to call
// while the server runs; the walking fields stay zero.
func (s *Server) EngineStats() timingsubg.Stats {
	return timingsubg.FastStats(s.fl)
}
