// Package server is the network serving layer of timingsubg: it hosts a
// dynamic fleet of continuous time-constrained subgraph queries behind
// an HTTP API, turning the library into a standalone service
// (cmd/tsserved). Producers POST batches of timestamped edges, operators
// register and retire queries at runtime without restarting the stream,
// and consumers subscribe to per-query match feeds over SSE.
//
// # Concurrency model
//
// The matching engines follow the paper's single-main-thread dispatch
// model: one edge transaction at a time, in timestamp order. The server
// preserves that by funnelling every mutating operation — ingest
// batches, query registration, query retirement, stat snapshots that
// touch engine internals — through one bounded work queue drained by a
// single loop goroutine. The queue bound is the backpressure mechanism:
// when producers outrun the engine, their requests block in line (and
// eventually time out via their contexts) instead of growing unbounded
// buffers. Pure reads (healthz, subscription fan-out, query listing)
// never enter the queue.
//
// Match delivery is push-based: the engine callback serializes each
// match once and hands it to a hub that fans it out to subscribers,
// dropping events for consumers that cannot keep up rather than
// stalling ingest (see hub).
//
// The wire types live in timingsubg/client, which is also the Go client
// for this API.
package server

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"path/filepath"
	"sync"
	"sync/atomic"

	"timingsubg"
	"timingsubg/client"
	"timingsubg/internal/monitor"
)

// Config tunes a Server.
type Config struct {
	// Labels is the shared label intern table. Nil means a fresh table;
	// pass one to share interning with in-process producers.
	Labels *timingsubg.Labels
	// Routed enables label-based routing for the in-memory fleet (New),
	// so per-edge dispatch cost is proportional to the number of
	// interested queries. NewDurable ignores it: the durable fleet fans
	// out to every query so recovery replay stays deterministic.
	Routed bool
	// Adaptive composes the feedback join-order reoptimizer onto every
	// hosted query engine (see timingsubg.Adaptivity). Composable with
	// both the in-memory and the durable fleet.
	Adaptive *timingsubg.Adaptivity
	// FleetWorkers > 1 shards fleet evaluation across that many workers
	// (see timingsubg.Config.FleetWorkers): each ingest batch is fanned
	// out to the shards concurrently, which is what lets one server
	// host many standing queries at multi-core speed. Composable with
	// every other option; 0 or 1 evaluates sequentially.
	FleetWorkers int
	// SubscriberBuffer is the per-subscriber SSE event buffer (default
	// 256). A subscriber that falls further behind than this loses
	// events (counted in server.dropped_events).
	SubscriberBuffer int
	// QueueDepth bounds the serialized work queue (default 128
	// outstanding operations). Producers beyond the bound block — the
	// backpressure contract.
	QueueDepth int
}

func (c *Config) norm() {
	if c.Labels == nil {
		c.Labels = timingsubg.NewLabels()
	}
	if c.FleetWorkers < 0 {
		// Negative worker counts are rejected by the engine; treat them
		// as "sequential" here so New's no-error contract holds.
		c.FleetWorkers = 0
	}
	if c.SubscriberBuffer <= 0 {
		c.SubscriberBuffer = 256
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 128
	}
}

// op is one serialized unit of work. ctx is the submitting request's
// context: if it is already dead when the op reaches the front of the
// queue, the op is skipped — the caller was told it failed, so running
// it anyway would make retries double-apply (duplicate ingest batches).
type op struct {
	ctx  context.Context
	fn   func()
	done chan struct{}
}

// Server hosts one query fleet behind the HTTP API. Create with New or
// NewDurable, mount Handler, and Close on shutdown.
type Server struct {
	cfg      Config
	labels   *timingsubg.Labels
	fl       timingsubg.Fleet
	hub      *hub
	reg      *monitor.Registry
	ops      chan op
	stopped  chan struct{}
	loopDone chan struct{}
	closer   sync.Once
	closeErr error

	qmu     sync.RWMutex
	windows map[string]int64 // live query name → window (wire units)

	queryDir string // query registration directory; "" when not durable
	stateDir string // durability root (label table home); "" when not durable
	// persistedLabels is the intern-table size already snapshotted to
	// disk; loop-owned once the server runs.
	persistedLabels int
	lastTime        int64 // stream clock; loop-owned once the server runs
	ingested        atomic.Int64
	mux             http.Handler
}

// New returns a server over a fresh in-memory dynamic fleet. Matching
// state lives and dies with the process; see NewDurable for the
// WAL-backed variant.
func New(cfg Config) *Server {
	cfg.norm()
	s := newServer(cfg)
	fl, err := timingsubg.OpenFleet(timingsubg.Config{
		Dynamic:      true,
		Routed:       cfg.Routed,
		Adaptive:     cfg.Adaptive,
		FleetWorkers: cfg.FleetWorkers,
		OnMatch:      s.deliver,
	})
	if err != nil {
		// Unreachable: an empty dynamic in-memory config cannot fail.
		panic(err)
	}
	s.fl = fl
	s.finish()
	return s
}

// NewDurable returns a server whose fleet journals every ingested edge
// through the write-ahead log in opts.Dir and checkpoints each query's
// window, so a killed and restarted server recovers its queries (from
// the registry under Dir/queries), its window state and its stream
// clock, then continues matching. Delivery across a restart is
// at-least-once.
func NewDurable(cfg Config, opts timingsubg.PersistentMultiOptions) (*Server, error) {
	cfg.norm()
	s := newServer(cfg)
	s.queryDir = filepath.Join(opts.Dir, "queries")
	s.stateDir = opts.Dir

	// Restore the label intern table before anything re-interns: WAL
	// records and checkpoints reference label IDs, so the string→ID
	// assignment must match the previous run exactly.
	if err := loadLabels(s.stateDir, s.labels); err != nil {
		return nil, err
	}
	s.persistedLabels = s.labels.Len()

	reqs, err := LoadQueries(s.queryDir)
	if err != nil {
		return nil, err
	}
	specs := make([]timingsubg.QuerySpec, 0, len(reqs))
	for _, req := range reqs {
		spec, err := ParseQueryRequest(req, s.labels)
		if err != nil {
			return nil, fmt.Errorf("server: persisted %w", err)
		}
		specs = append(specs, spec)
		s.windows[req.Name] = req.Window
	}
	fl, err := timingsubg.OpenFleet(timingsubg.Config{
		Queries:      specs,
		Dynamic:      true,
		Adaptive:     cfg.Adaptive,
		FleetWorkers: cfg.FleetWorkers,
		Durable: &timingsubg.Durability{
			Dir:             opts.Dir,
			CheckpointEvery: opts.CheckpointEvery,
			SyncEvery:       opts.SyncEvery,
			SegmentBytes:    opts.SegmentBytes,
		},
		OnMatch: s.deliver,
	})
	if err != nil {
		return nil, err
	}
	s.fl = fl
	if lt := fl.Stats().LastTime; lt > 0 {
		s.lastTime = int64(lt)
	}
	s.finish()
	return s, nil
}

func newServer(cfg Config) *Server {
	return &Server{
		cfg:      cfg,
		labels:   cfg.Labels,
		hub:      newHub(),
		reg:      monitor.NewRegistry(),
		ops:      make(chan op, cfg.QueueDepth),
		stopped:  make(chan struct{}),
		loopDone: make(chan struct{}),
		windows:  make(map[string]int64),
	}
}

// finish wires metrics and routes once the fleet exists, then starts
// the work loop.
func (s *Server) finish() {
	s.reg.MustRegister("server.ingested", func() any { return s.ingested.Load() })
	s.reg.MustRegister("server.last_time", func() any { return s.lastTime })
	s.reg.MustRegister("server.queries", func() any { return len(s.fl.Names()) })
	s.reg.MustRegister("server.subscribers", func() any { return s.hub.subscribers() })
	s.reg.MustRegister("server.delivered_events", func() any { return s.hub.delivered.Load() })
	s.reg.MustRegister("server.dropped_events", func() any { return s.hub.dropped.Load() })
	s.reg.MustRegister("server.queue_depth", func() any { return len(s.ops) })
	// Fleet gauges derive generically from the unified Stats snapshot —
	// no per-façade wiring. "fleet.stats" is the whole snapshot (the
	// primary contract, self-describing and dynamic-roster-safe); the
	// scalar gauges are kept for scrapers that want flat metrics and
	// sample the counter-only FastStats so a scrape doesn't walk
	// partial-match state once per gauge on the op loop.
	s.reg.MustRegister("fleet.stats", func() any { return clientStats(s.fl.Stats()) })
	s.reg.MustRegister("fleet.matches", func() any {
		st := timingsubg.FastStats(s.fl)
		out := make(map[string]int64, len(st.Queries))
		for name, qs := range st.Queries {
			out[name] = qs.Matches
		}
		return out
	})
	// No flat space gauge: partial-match walks run exactly once per
	// scrape, inside "fleet.stats" (which carries space_bytes).
	probe := timingsubg.FastStats(s.fl)
	if s.cfg.Routed && !probe.Durable {
		// The durable fleet broadcasts (NewDurable ignores Routed), so
		// a routed-fraction gauge there would report a misleading 1.
		s.reg.MustRegister("fleet.routed_fraction", func() any { return timingsubg.FastStats(s.fl).RoutedFraction })
	}
	if probe.Durable {
		s.reg.MustRegister("fleet.wal_seq", func() any { return timingsubg.FastStats(s.fl).WALSeq })
		s.reg.MustRegister("fleet.replayed", func() any { return timingsubg.FastStats(s.fl).Replayed })
	}

	mux := http.NewServeMux()
	mux.HandleFunc("POST /queries", s.handleAddQuery)
	mux.HandleFunc("GET /queries", s.handleListQueries)
	mux.HandleFunc("DELETE /queries/{name}", s.handleRemoveQuery)
	mux.HandleFunc("POST /ingest", s.handleIngest)
	mux.HandleFunc("GET /subscribe", s.handleSubscribe)
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux = mux

	go s.run()
}

// Handler returns the server's HTTP API.
func (s *Server) Handler() http.Handler { return s.mux }

// run drains the work queue; it is the single goroutine that touches
// engine state.
func (s *Server) run() {
	defer close(s.loopDone)
	exec := func(o op) {
		if o.ctx.Err() == nil {
			o.fn()
		}
		close(o.done)
	}
	for {
		select {
		case o := <-s.ops:
			exec(o)
		case <-s.stopped:
			// Finish operations already admitted to the queue so their
			// callers unblock, then stop.
			for {
				select {
				case o := <-s.ops:
					exec(o)
				default:
					return
				}
			}
		}
	}
}

// errClosed reports an operation submitted after Close.
var errClosed = errors.New("server: closed")

// do runs fn on the work loop and waits for it. Submission blocks while
// the bounded queue is full — that is the backpressure path — and gives
// up when ctx expires.
func (s *Server) do(ctx context.Context, fn func()) error {
	o := op{ctx: ctx, fn: fn, done: make(chan struct{})}
	select {
	case s.ops <- o:
	case <-ctx.Done():
		return ctx.Err()
	case <-s.stopped:
		return errClosed
	}
	select {
	case <-o.done:
		return nil
	case <-ctx.Done():
		// The loop sees the dead ctx and skips the op when it reaches
		// the front of the queue.
		return ctx.Err()
	case <-s.stopped:
		// The loop's final drain may already have passed when this op
		// was buffered, in which case done will never close. Once the
		// loop has fully exited, "did it run" has a definitive answer.
		<-s.loopDone
		select {
		case <-o.done:
			return nil
		default:
			return errClosed
		}
	}
}

// Close stops the work loop, terminates every subscription and shuts
// the fleet down (checkpointing it, in durable mode). It is safe to
// call more than once.
func (s *Server) Close() error {
	s.closer.Do(func() {
		close(s.stopped)
		<-s.loopDone
		s.hub.closeAll()
		s.closeErr = s.fl.Close()
	})
	return s.closeErr
}

// persistLabels snapshots the intern table if it has grown since the
// last snapshot. Durable-mode ops call it before the first WAL append
// or query-file write that could reference a newly interned ID. Only
// the work loop calls it.
func (s *Server) persistLabels() error {
	if s.stateDir == "" {
		return nil
	}
	n := s.labels.Len()
	if n == s.persistedLabels {
		return nil
	}
	if err := saveLabels(s.stateDir, s.labels); err != nil {
		return err
	}
	s.persistedLabels = n
	return nil
}

// clientStats converts the engine's unified snapshot to its wire form.
func clientStats(st timingsubg.Stats) client.EngineStats {
	out := client.EngineStats{
		Matches:         st.Matches,
		Discarded:       st.Discarded,
		Fed:             st.Fed,
		InWindow:        st.InWindow,
		PartialMatches:  st.PartialMatches,
		SpaceBytes:      st.SpaceBytes,
		LastTime:        int64(st.LastTime),
		K:               st.K,
		Reoptimizations: st.Reoptimizations,
		WALSeq:          st.WALSeq,
		Replayed:        st.Replayed,
		RoutedFraction:  st.RoutedFraction,
		FleetWorkers:    st.FleetWorkers,
		ShardMembers:    st.ShardMembers,
		Adaptive:        st.Adaptive,
		Durable:         st.Durable,
		Fleet:           st.Fleet,
	}
	if len(st.Queries) > 0 {
		out.Queries = make(map[string]client.EngineStats, len(st.Queries))
		for name, qs := range st.Queries {
			out.Queries[name] = clientStats(qs)
		}
	}
	return out
}

// deliver is the fleet-level match callback: serialize once, fan out.
func (s *Server) deliver(name string, m *timingsubg.Match) {
	ev := client.MatchEvent{Query: name, Edges: make([]client.MatchEdge, len(m.Edges))}
	for i, e := range m.Edges {
		ev.Edges[i] = client.MatchEdge{
			ID:   int64(e.ID),
			From: int64(e.From),
			To:   int64(e.To),
			Time: int64(e.Time),
		}
		if e.EdgeLabel != timingsubg.NoLabel {
			ev.Edges[i].Label = s.labels.String(e.EdgeLabel)
		}
	}
	data, err := json.Marshal(ev)
	if err != nil {
		return // unreachable: MatchEvent is marshal-safe by construction
	}
	s.hub.publish(name, data)
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	http.Error(w, fmt.Sprintf(format, args...), code)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func (s *Server) handleAddQuery(w http.ResponseWriter, r *http.Request) {
	var req client.QueryRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad query request: %v", err)
		return
	}
	spec, err := ParseQueryRequest(req, s.labels)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	var opErr error
	status := http.StatusCreated
	err = s.do(r.Context(), func() {
		if s.fl.HasQuery(req.Name) {
			status = http.StatusConflict
			opErr = fmt.Errorf("query %q already registered", req.Name)
			return
		}
		// Labels the query text interned must hit disk before any state
		// that references their IDs (query file, checkpoints).
		if opErr = s.persistLabels(); opErr != nil {
			status = http.StatusInternalServerError
			return
		}
		if opErr = s.fl.AddQuery(spec); opErr != nil {
			status = http.StatusBadRequest
			return
		}
		if s.queryDir != "" {
			if err := saveQueryFile(s.queryDir, req); err != nil {
				// The query is live but would not survive a restart;
				// surface that as a server error and roll it back.
				s.fl.RemoveQuery(req.Name)
				status = http.StatusInternalServerError
				opErr = err
				return
			}
		}
		s.qmu.Lock()
		s.windows[req.Name] = req.Window
		s.qmu.Unlock()
	})
	if err != nil {
		httpError(w, http.StatusServiceUnavailable, "%v", err)
		return
	}
	if opErr != nil {
		httpError(w, status, "%v", opErr)
		return
	}
	writeJSON(w, status, client.QueryInfo{Name: req.Name, Window: req.Window})
}

func (s *Server) handleRemoveQuery(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	var opErr error
	status := http.StatusNoContent
	err := s.do(r.Context(), func() {
		if !s.fl.HasQuery(name) {
			status = http.StatusNotFound
			opErr = fmt.Errorf("unknown query %q", name)
			return
		}
		if opErr = s.fl.RemoveQuery(name); opErr != nil {
			status = http.StatusInternalServerError
			return
		}
		if s.queryDir != "" {
			if err := removeQueryFile(s.queryDir, name); err != nil {
				status = http.StatusInternalServerError
				opErr = err
				return
			}
		}
		s.qmu.Lock()
		delete(s.windows, name)
		s.qmu.Unlock()
		// End the subscriptions after the engine is gone, so no further
		// deliveries can race the close.
		s.hub.closeQuery(name)
	})
	if err != nil {
		httpError(w, http.StatusServiceUnavailable, "%v", err)
		return
	}
	if opErr != nil {
		httpError(w, status, "%v", opErr)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleListQueries(w http.ResponseWriter, r *http.Request) {
	names := s.fl.Names()
	s.qmu.RLock()
	list := client.QueryList{Queries: make([]client.QueryInfo, 0, len(names))}
	for _, n := range names {
		list.Queries = append(list.Queries, client.QueryInfo{Name: n, Window: s.windows[n]})
	}
	s.qmu.RUnlock()
	writeJSON(w, http.StatusOK, list)
}

// ingestLine is one decoded NDJSON line with labels already interned —
// decode and interning run off the work loop (the intern table is
// concurrency-safe), so the serialized section does only engine work.
type ingestLine struct {
	line     int
	edge     timingsubg.Edge
	autoTime bool
}

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	var res client.IngestResult
	var batch []ingestLine
	sc := bufio.NewScanner(http.MaxBytesReader(w, r.Body, 64<<20))
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var e client.Edge
		if err := json.Unmarshal(raw, &e); err != nil {
			res.Rejected++
			res.Errors = append(res.Errors, client.IngestError{Line: line, Message: err.Error()})
			continue
		}
		if e.Time < 0 {
			res.Rejected++
			res.Errors = append(res.Errors, client.IngestError{Line: line, Message: "time must be non-negative"})
			continue
		}
		batch = append(batch, ingestLine{
			line: line,
			edge: timingsubg.Edge{
				From:      timingsubg.VertexID(e.From),
				To:        timingsubg.VertexID(e.To),
				FromLabel: s.labels.Intern(e.FromLabel),
				ToLabel:   s.labels.Intern(e.ToLabel),
				EdgeLabel: s.labels.Intern(e.Label),
				Time:      timingsubg.Timestamp(e.Time),
			},
			autoTime: e.Time == 0,
		})
	}
	if err := sc.Err(); err != nil {
		httpError(w, http.StatusBadRequest, "read ingest body: %v", err)
		return
	}

	var opErr error
	err := s.do(r.Context(), func() {
		// Any label this batch interned must hit disk before the first
		// WAL append that references its ID.
		if opErr = s.persistLabels(); opErr != nil {
			return
		}
		// Resolve timestamps against the stream clock first, so the
		// whole batch can ride the engine's FeedBatch fast path (one
		// WAL write and sync, one fleet lock) instead of per-edge Feed.
		edges := make([]timingsubg.Edge, 0, len(batch))
		lines := make([]int, 0, len(batch))
		clock := s.lastTime
		for _, item := range batch {
			e := item.edge
			if item.autoTime {
				e.Time = timingsubg.Timestamp(clock + 1) // server-assigned tick
			} else if int64(e.Time) <= clock {
				res.Rejected++
				res.Errors = append(res.Errors, client.IngestError{
					Line:    item.line,
					Message: fmt.Sprintf("out of order: time %d after %d (timestamps must be strictly increasing)", e.Time, clock),
				})
				continue
			}
			clock = int64(e.Time)
			edges = append(edges, e)
			lines = append(lines, item.line)
		}
		// FeedBatch stops at the first failing edge; reject that line
		// and resume with the rest so one bad edge cannot shadow the
		// batch's tail (the per-line accounting contract). Only
		// ErrOutOfOrder is a per-edge fault; anything else (WAL write
		// failure, checkpoint failure) is a server-side error — it must
		// surface as a 5xx, not masquerade as a bad line.
		off := 0
		for off < len(edges) {
			n, ferr := s.fl.FeedBatch(edges[off:])
			if n > 0 {
				s.lastTime = int64(edges[off+n-1].Time)
				res.Accepted += n
				s.ingested.Add(int64(n))
			}
			if ferr == nil {
				break
			}
			if off+n >= len(edges) || !errors.Is(ferr, timingsubg.ErrOutOfOrder) {
				opErr = ferr
				return
			}
			res.Rejected++
			res.Errors = append(res.Errors, client.IngestError{Line: lines[off+n], Message: ferr.Error()})
			off += n + 1
		}
	})
	if err != nil {
		httpError(w, http.StatusServiceUnavailable, "%v", err)
		return
	}
	if opErr != nil {
		httpError(w, http.StatusInternalServerError, "%v", opErr)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

func (s *Server) handleSubscribe(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("query")
	if name == "" {
		httpError(w, http.StatusBadRequest, "missing ?query= parameter")
		return
	}
	if !s.fl.HasQuery(name) {
		httpError(w, http.StatusNotFound, "unknown query %q", name)
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		httpError(w, http.StatusInternalServerError, "streaming unsupported by connection")
		return
	}
	sub := s.hub.subscribe(name, s.cfg.SubscriberBuffer)
	if sub == nil {
		httpError(w, http.StatusServiceUnavailable, "server shutting down")
		return
	}
	defer s.hub.unsubscribe(name, sub)
	// Re-check after subscribing: a concurrent DELETE that ran its
	// closeQuery between our existence check and the subscribe above
	// would otherwise leave this subscriber attached to a dead name —
	// an endless silent stream, or worse, a feed of a future query that
	// reuses the name.
	if !s.fl.HasQuery(name) {
		httpError(w, http.StatusNotFound, "unknown query %q", name)
		return
	}

	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	fmt.Fprintf(w, ": subscribed query=%s\n\n", name)
	flusher.Flush()

	for {
		select {
		case data, ok := <-sub.ch:
			if !ok {
				return // query removed or server closing
			}
			if _, err := fmt.Fprintf(w, "event: match\ndata: %s\n\n", data); err != nil {
				return
			}
			flusher.Flush()
		case <-r.Context().Done():
			return
		case <-s.stopped:
			// Long-lived streams must not hold up graceful shutdown:
			// http.Server.Shutdown waits for every handler to return.
			return
		}
	}
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	// Sampling runs on the work loop so engine-internal gauges (space
	// bytes, partial-match walks) never race an in-flight edge
	// transaction; the registry supplies the metric set.
	var payload map[string]any
	var status int
	var msg string
	err := s.do(r.Context(), func() {
		if m := r.URL.Query().Get("metric"); m != "" {
			v, ok := s.reg.Sample(m)
			if !ok {
				status, msg = http.StatusNotFound, fmt.Sprintf("unknown metric %q", m)
				return
			}
			payload = map[string]any{m: v}
			return
		}
		payload = s.reg.Snapshot()
	})
	if err != nil {
		httpError(w, http.StatusServiceUnavailable, "%v", err)
		return
	}
	if status != 0 {
		httpError(w, status, "%s", msg)
		return
	}
	writeJSON(w, http.StatusOK, payload)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, client.Health{Status: "ok"})
}

// LastTime returns the server's stream clock (for tests and embedding).
func (s *Server) LastTime() timingsubg.Timestamp {
	return timingsubg.Timestamp(s.lastTime)
}
