// Package reify implements the paper's edge-label transformation
// (Section II): "since vertex labels and edge labels are from two
// different label sets, we can introduce an imaginary vertex to
// represent an edge of interest and assign the edge label to the new
// imaginary vertex." A labelled edge u →ℓ→ v becomes u → x_ℓ → v where
// x_ℓ is a fresh vertex carrying ℓ.
//
// The engine supports edge labels natively, so reification is not needed
// for functionality; it exists to demonstrate the equivalence claim
// executably (reified streams + reified queries yield exactly the
// matches of the native representation — see the package tests) and to
// interoperate with vertex-labelled-only tooling.
package reify

import (
	"timingsubg/internal/graph"
	"timingsubg/internal/query"
)

// vertexSpace partitions reified vertex IDs away from original ones:
// imaginary vertices occupy the negative range below reifyBase.
const reifyBase graph.VertexID = -1 << 40

// Stream rewrites a stream of (possibly edge-labelled) edges into a
// vertex-labelled-only stream: each labelled edge σ = u →ℓ→ v at time t
// becomes two edges u → x and x → v, where x is a fresh imaginary vertex
// labelled ℓ. The two half-edges receive consecutive timestamps, so a
// window of w original units must be scaled by the caller (Stream
// reports the scale factor: output timestamps are 2× input).
//
// Unlabelled edges are passed through (their timestamps doubled to stay
// aligned).
func Stream(labels *graph.Labels, edges []graph.Edge) []graph.Edge {
	out := make([]graph.Edge, 0, 2*len(edges))
	next := reifyBase
	for _, e := range edges {
		if e.EdgeLabel == graph.NoLabel {
			e2 := e
			e2.Time = e.Time * 2
			out = append(out, e2)
			continue
		}
		x := next
		next--
		out = append(out, graph.Edge{
			From: e.From, To: x,
			FromLabel: e.FromLabel, ToLabel: e.EdgeLabel,
			Time: e.Time*2 - 1,
		})
		out = append(out, graph.Edge{
			From: x, To: e.To,
			FromLabel: e.EdgeLabel, ToLabel: e.ToLabel,
			Time: e.Time * 2,
		})
	}
	return out
}

// Query rewrites a query the same way: every labelled query edge u →ℓ→ v
// becomes u → x_ℓ → v with both halves ordered (first ≺ second), and
// every timing constraint a ≺ b is carried over to the reified halves
// (last half of a ≺ first half of b). The mapping from original edge IDs
// to reified (first, last) IDs is returned for result translation.
func Query(q *query.Query) (*query.Query, map[query.EdgeID][2]query.EdgeID, error) {
	b := query.NewBuilder()
	for v := 0; v < q.NumVertices(); v++ {
		b.AddVertex(q.VertexLabel(query.VertexID(v)))
	}
	halves := make(map[query.EdgeID][2]query.EdgeID, q.NumEdges())
	for _, e := range q.Edges() {
		if e.Label == graph.NoLabel {
			id := b.AddEdge(e.From, e.To)
			halves[e.ID] = [2]query.EdgeID{id, id}
			continue
		}
		x := b.AddVertex(e.Label)
		first := b.AddEdge(e.From, x)
		second := b.AddEdge(x, e.To)
		b.Before(first, second)
		halves[e.ID] = [2]query.EdgeID{first, second}
	}
	for _, p := range q.DirectOrders() {
		b.Before(halves[p[0]][1], halves[p[1]][0])
	}
	rq, err := b.Build()
	if err != nil {
		return nil, nil, err
	}
	return rq, halves, nil
}

// WindowScale is the factor by which a window duration must be
// multiplied when moving to the reified stream (timestamps double).
const WindowScale = 2
