package reify

import (
	"testing"

	"timingsubg/internal/core"
	"timingsubg/internal/datagen"
	"timingsubg/internal/graph"
	qry "timingsubg/internal/query"
	"timingsubg/internal/querygen"
)

// TestReifiedEquivalence is the executable form of the paper's Section
// II remark: on fully edge-labelled workloads, reifying both the stream
// and the query (with a doubled window) yields exactly as many matches
// as the native edge-labelled execution.
func TestReifiedEquivalence(t *testing.T) {
	for trial := 0; trial < 6; trial++ {
		ds := datagen.NetworkFlow
		if trial%2 == 1 {
			ds = datagen.SocialStream
		}
		labels := graph.NewLabels()
		gen := datagen.New(ds, labels, datagen.Config{Vertices: 400, Seed: int64(trial + 2)})
		edges := gen.Take(700)
		q, _, err := querygen.Generate(edges[:300], querygen.Config{
			Size: 3 + trial%3, Order: querygen.OrderKind(trial % 3), Seed: int64(trial)})
		if err != nil {
			t.Skipf("trial %d: %v", trial, err)
		}

		const window = 250
		native := core.New(q, core.Config{})
		st := graph.NewStream(window)
		for _, e := range edges {
			stored, expired, err := st.Push(e)
			if err != nil {
				t.Fatal(err)
			}
			native.Process(stored, expired)
		}

		rq, halves, err := Query(q)
		if err != nil {
			t.Fatalf("trial %d: reify query: %v", trial, err)
		}
		if len(halves) != q.NumEdges() {
			t.Fatalf("trial %d: halves map incomplete", trial)
		}
		reified := core.New(rq, core.Config{})
		rst := graph.NewStream(window * WindowScale)
		for _, e := range Stream(labels, edges) {
			stored, expired, err := rst.Push(e)
			if err != nil {
				t.Fatal(err)
			}
			reified.Process(stored, expired)
		}

		n1 := native.Stats().Matches.Load()
		n2 := reified.Stats().Matches.Load()
		if n1 != n2 {
			t.Errorf("trial %d (%s, size %d): native found %d matches, reified %d",
				trial, ds, q.NumEdges(), n1, n2)
		}
	}
}

func TestStreamReificationShape(t *testing.T) {
	labels := graph.NewLabels()
	ip := labels.Intern("IP")
	tcp := labels.Intern("tcp")
	in := []graph.Edge{
		{From: 1, To: 2, FromLabel: ip, ToLabel: ip, EdgeLabel: tcp, Time: 5},
		{From: 2, To: 3, FromLabel: ip, ToLabel: ip, Time: 6}, // unlabelled
	}
	out := Stream(labels, in)
	if len(out) != 3 {
		t.Fatalf("want 3 reified edges, got %d", len(out))
	}
	// Labelled edge became u→x, x→v with the edge label on x.
	if out[0].To != out[1].From {
		t.Error("halves must share the imaginary vertex")
	}
	if out[0].ToLabel != tcp || out[1].FromLabel != tcp {
		t.Error("imaginary vertex must carry the edge label")
	}
	if out[0].Time != 9 || out[1].Time != 10 {
		t.Errorf("halves must land at 2t-1, 2t; got %d, %d", out[0].Time, out[1].Time)
	}
	if out[0].EdgeLabel != graph.NoLabel || out[1].EdgeLabel != graph.NoLabel {
		t.Error("reified edges must be unlabelled")
	}
	// Unlabelled edge passes through at doubled time.
	if out[2].From != 2 || out[2].To != 3 || out[2].Time != 12 {
		t.Errorf("unlabelled passthrough wrong: %+v", out[2])
	}
	// Distinct labelled edges get distinct imaginary vertices.
	out2 := Stream(labels, []graph.Edge{in[0], {From: 4, To: 5, FromLabel: ip, ToLabel: ip, EdgeLabel: tcp, Time: 7}})
	if out2[0].To == out2[2].To {
		t.Error("each labelled edge needs a fresh imaginary vertex")
	}
}

func TestQueryReificationShape(t *testing.T) {
	labels := graph.NewLabels()
	ip := labels.Intern("IP")
	tcp := labels.Intern("tcp")
	b := qry.NewBuilder()
	v1 := b.AddVertex(ip)
	v2 := b.AddVertex(ip)
	e1 := b.AddLabeledEdge(v1, v2, tcp)
	e2 := b.AddEdge(v2, v1) // unlabelled
	b.Before(e1, e2)
	q, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	rq, halves, err := Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if rq.NumEdges() != 3 {
		t.Fatalf("1 labelled + 1 plain edge must reify to 3, got %d", rq.NumEdges())
	}
	if rq.NumVertices() != 3 {
		t.Fatalf("one imaginary vertex expected, got %d vertices", rq.NumVertices())
	}
	h1 := halves[e1]
	// Halves of the labelled edge are chained.
	if !rq.Precedes(h1[0], h1[1]) {
		t.Error("gadget halves must be ordered")
	}
	// Original constraint e1 ≺ e2 carries to last-half ≺ e2's edge.
	h2 := halves[e2]
	if !rq.Precedes(h1[1], h2[0]) {
		t.Error("cross constraints must carry over")
	}
}
