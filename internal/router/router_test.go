package router

import (
	"math/rand"
	"sort"
	"testing"

	"timingsubg/internal/graph"
	"timingsubg/internal/query"
)

// buildQuery makes a small random connected query over nl vertex labels
// and el edge labels (0 = wildcard allowed).
func buildQuery(t testing.TB, rng *rand.Rand, nl, el int) *query.Query {
	t.Helper()
	b := query.NewBuilder()
	n := 2 + rng.Intn(3)
	var vs []query.VertexID
	for i := 0; i < n; i++ {
		vs = append(vs, b.AddVertex(graph.Label(1+rng.Intn(nl))))
	}
	// A connected chain plus maybe one extra edge.
	prev := vs[0]
	for i := 1; i < n; i++ {
		if el > 0 && rng.Intn(2) == 0 {
			b.AddLabeledEdge(prev, vs[i], graph.Label(1+rng.Intn(el)))
		} else {
			b.AddEdge(prev, vs[i])
		}
		prev = vs[i]
	}
	q, err := b.Build()
	if err != nil {
		t.Fatalf("build query: %v", err)
	}
	return q
}

func randomEdge(rng *rand.Rand, nl, el int) graph.Edge {
	e := graph.Edge{
		From:      graph.VertexID(rng.Intn(10)),
		To:        graph.VertexID(10 + rng.Intn(10)),
		FromLabel: graph.Label(1 + rng.Intn(nl)),
		ToLabel:   graph.Label(1 + rng.Intn(nl)),
		Time:      graph.Timestamp(rng.Int63n(1 << 40)),
	}
	if el > 0 && rng.Intn(2) == 0 {
		e.EdgeLabel = graph.Label(1 + rng.Intn(el))
	}
	return e
}

// TestRouteMatchesBruteForce is the router's defining property: for
// random fleets and random edges, Route returns exactly the queries
// whose MatchingEdges set is non-empty.
func TestRouteMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		r := New()
		var fleet []*query.Query
		for i := 0; i < 1+rng.Intn(20); i++ {
			q := buildQuery(t, rng, 4, 3)
			fleet = append(fleet, q)
			r.Add(i, q)
		}
		for probe := 0; probe < 50; probe++ {
			d := randomEdge(rng, 4, 3)
			got := r.RouteSet(d)
			sort.Ints(got)
			var want []int
			for i, q := range fleet {
				if len(q.MatchingEdges(d)) > 0 {
					want = append(want, i)
				}
			}
			if len(got) != len(want) {
				t.Fatalf("trial %d: routed %v, brute force %v (edge %+v)", trial, got, want, d)
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("trial %d: routed %v, brute force %v", trial, got, want)
				}
			}
		}
	}
}

// TestRouteDeduplicates: a query with several edges matching the same
// data edge is reported exactly once.
func TestRouteDeduplicates(t *testing.T) {
	b := query.NewBuilder()
	va := b.AddVertex(1)
	vb := b.AddVertex(2)
	vc := b.AddVertex(1)
	b.AddEdge(va, vb) // 1→2
	b.AddEdge(vc, vb) // 1→2 again (different query vertices)
	q, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	r := New()
	r.Add(0, q)
	d := graph.Edge{From: 7, To: 8, FromLabel: 1, ToLabel: 2}
	if got := r.RouteSet(d); len(got) != 1 || got[0] != 0 {
		t.Fatalf("RouteSet = %v, want [0]", got)
	}
}

// TestWildcardEdgeLabel: an unlabelled query edge must receive edges of
// any edge label; a labelled one only its own.
func TestWildcardEdgeLabel(t *testing.T) {
	mk := func(edgeLabel graph.Label) *query.Query {
		b := query.NewBuilder()
		va := b.AddVertex(1)
		vb := b.AddVertex(2)
		if edgeLabel != graph.NoLabel {
			b.AddLabeledEdge(va, vb, edgeLabel)
		} else {
			b.AddEdge(va, vb)
		}
		q, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		return q
	}
	r := New()
	r.Add(0, mk(graph.NoLabel)) // wildcard
	r.Add(1, mk(9))             // label 9 only

	any := graph.Edge{FromLabel: 1, ToLabel: 2, EdgeLabel: 5}
	if got := r.RouteSet(any); len(got) != 1 || got[0] != 0 {
		t.Fatalf("label-5 edge routed to %v, want [0]", got)
	}
	nine := graph.Edge{FromLabel: 1, ToLabel: 2, EdgeLabel: 9}
	got := r.RouteSet(nine)
	sort.Ints(got)
	if len(got) != 2 {
		t.Fatalf("label-9 edge routed to %v, want both", got)
	}
	none := graph.Edge{FromLabel: 2, ToLabel: 1}
	if got := r.RouteSet(none); len(got) != 0 {
		t.Fatalf("reversed-label edge routed to %v, want none", got)
	}
}

func TestEmptyRouter(t *testing.T) {
	r := New()
	if got := r.RouteSet(graph.Edge{FromLabel: 1, ToLabel: 2}); len(got) != 0 {
		t.Fatalf("empty router routed %v", got)
	}
	if r.Queries() != 0 {
		t.Fatalf("Queries = %d", r.Queries())
	}
}

func BenchmarkRouteFleet100(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	r := New()
	for i := 0; i < 100; i++ {
		r.Add(i, buildQuery(b, rng, 8, 4))
	}
	edges := make([]graph.Edge, 1024)
	for i := range edges {
		edges[i] = randomEdge(rng, 8, 4)
	}
	b.ResetTimer()
	var sink int
	for i := 0; i < b.N; i++ {
		r.Route(edges[i%len(edges)], func(id int) { sink += id })
	}
	_ = sink
}

func TestRouterRemove(t *testing.T) {
	labels := []graph.Label{1, 2}
	mk := func(edgeLabel graph.Label) *query.Query {
		b := query.NewBuilder()
		u, v := b.AddVertex(labels[0]), b.AddVertex(labels[1])
		if edgeLabel == graph.NoLabel {
			b.AddEdge(u, v)
		} else {
			b.AddLabeledEdge(u, v, edgeLabel)
		}
		q, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		return q
	}
	r := New()
	r.Add(0, mk(5))             // exact bucket
	r.Add(1, mk(graph.NoLabel)) // wildcard bucket
	r.Add(2, mk(5))

	e := graph.Edge{FromLabel: 1, ToLabel: 2, EdgeLabel: 5}
	if got := r.RouteSet(e); len(got) != 3 {
		t.Fatalf("before remove: want 3 handles, got %v", got)
	}
	r.Remove(0)
	r.Remove(1)
	got := r.RouteSet(e)
	if len(got) != 1 || got[0] != 2 {
		t.Fatalf("after remove: want [2], got %v", got)
	}
	r.Remove(99) // unknown handle: no-op
	if got := r.RouteSet(e); len(got) != 1 {
		t.Fatalf("after no-op remove: got %v", got)
	}
	// A removed handle's slot can be recycled for a new query.
	r.Add(0, mk(graph.NoLabel))
	got = r.RouteSet(e)
	sort.Ints(got)
	if len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Fatalf("after re-add: want [0 2], got %v", got)
	}
}
