// Package router indexes a fleet of continuous queries by the label
// signatures of their query edges, so that each arriving data edge is
// dispatched only to the queries that could possibly match it.
//
// Naive multi-query monitoring feeds every edge to every engine: cost
// O(#queries) per edge even when almost all queries ignore the edge.
// With the paper's motivating deployments in mind (Verizon's ten attack
// patterns, a fraud-rule catalogue), the router reduces dispatch to
// O(#interested queries) by an inverted index on the
// ⟨from-label, to-label, edge-label⟩ triple, with a second bucket for
// query edges whose edge label is the wildcard (graph.NoLabel matches
// any data edge label, mirroring query.MatchesData).
package router

import (
	"timingsubg/internal/graph"
	"timingsubg/internal/query"
)

// key identifies an exactly-labelled query edge signature.
type key struct {
	from, to, edge graph.Label
}

// vkey identifies a wildcard-edge-label signature (vertex labels only).
type vkey struct {
	from, to graph.Label
}

// Router dispatches data edges to interested queries. Register queries
// with Add, then call Route per edge. Route is read-only and cheap; Add
// is not safe to interleave with Route.
type Router struct {
	exact map[key][]int
	wild  map[vkey][]int

	// epoch stamps deduplicate a query that matches an edge through
	// several of its query edges without per-call allocation.
	lastSeen []int64
	epoch    int64
	queries  int
}

// New returns an empty router.
func New() *Router {
	return &Router{exact: make(map[key][]int), wild: make(map[vkey][]int)}
}

// Add registers q under the dense handle id (0-based; use the slice
// index of the query in the caller's fleet). Handles must be unique.
func (r *Router) Add(id int, q *query.Query) {
	for _, qe := range q.Edges() {
		from := q.VertexLabel(qe.From)
		to := q.VertexLabel(qe.To)
		if qe.Label == graph.NoLabel {
			k := vkey{from, to}
			r.wild[k] = appendUnique(r.wild[k], id)
		} else {
			k := key{from, to, qe.Label}
			r.exact[k] = appendUnique(r.exact[k], id)
		}
	}
	if id >= r.queries {
		r.queries = id + 1
	}
	if len(r.lastSeen) < r.queries {
		grown := make([]int64, r.queries)
		copy(grown, r.lastSeen)
		r.lastSeen = grown
	}
}

// Remove unregisters handle id from every bucket, so Route never
// delivers it again. The handle may be reused by a later Add (the
// dynamic-fleet slot-recycling pattern). Removing an unknown handle is a
// no-op. Like Add, Remove is not safe to interleave with Route.
func (r *Router) Remove(id int) {
	for k, s := range r.exact {
		if trimmed := removeID(s, id); len(trimmed) == 0 {
			delete(r.exact, k)
		} else {
			r.exact[k] = trimmed
		}
	}
	for k, s := range r.wild {
		if trimmed := removeID(s, id); len(trimmed) == 0 {
			delete(r.wild, k)
		} else {
			r.wild[k] = trimmed
		}
	}
}

// Queries returns how many handles have been registered.
func (r *Router) Queries() int { return r.queries }

// Route invokes fn once for every registered query that has at least
// one query edge matching d (same predicate as query.MatchesData).
// Handles are delivered in ascending order within each bucket but the
// two buckets are concatenated; callers needing global order should
// collect and sort.
func (r *Router) Route(d graph.Edge, fn func(id int)) {
	r.epoch++
	for _, id := range r.exact[key{d.FromLabel, d.ToLabel, d.EdgeLabel}] {
		if r.lastSeen[id] != r.epoch {
			r.lastSeen[id] = r.epoch
			fn(id)
		}
	}
	for _, id := range r.wild[vkey{d.FromLabel, d.ToLabel}] {
		if r.lastSeen[id] != r.epoch {
			r.lastSeen[id] = r.epoch
			fn(id)
		}
	}
}

// RouteSet returns the interested handles as a fresh slice (testing and
// diagnostics convenience; hot paths should prefer Route).
func (r *Router) RouteSet(d graph.Edge) []int {
	var out []int
	r.Route(d, func(id int) { out = append(out, id) })
	return out
}

func removeID(s []int, id int) []int {
	out := s[:0]
	for _, v := range s {
		if v != id {
			out = append(out, v)
		}
	}
	return out
}

func appendUnique(s []int, id int) []int {
	for _, v := range s {
		if v == id {
			return s
		}
	}
	return append(s, id)
}
