package checkpoint

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"testing/quick"

	"timingsubg/internal/graph"
)

func sample(nextSeq int64, nEdges int) Checkpoint {
	ck := Checkpoint{
		NextSeq:   nextSeq,
		Window:    30,
		Matches:   nextSeq * 2,
		Discarded: nextSeq / 2,
	}
	for i := 0; i < nEdges; i++ {
		ck.Edges = append(ck.Edges, graph.Edge{
			ID:        graph.EdgeID(nextSeq) - graph.EdgeID(nEdges-i),
			From:      graph.VertexID(i),
			To:        graph.VertexID(i + 1),
			FromLabel: graph.Label(i % 4),
			ToLabel:   graph.Label(i % 3),
			EdgeLabel: graph.Label(i % 2),
			Time:      graph.Timestamp(100 + i),
		})
	}
	return ck
}

func TestSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	want := sample(42, 17)
	if err := Save(dir, want); err != nil {
		t.Fatal(err)
	}
	got, ok, err := Load(dir)
	if err != nil || !ok {
		t.Fatalf("load: ok=%v err=%v", ok, err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip mismatch:\ngot  %+v\nwant %+v", got, want)
	}
}

func TestLoadEmptyDirIsColdStart(t *testing.T) {
	_, ok, err := Load(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("empty dir reported a checkpoint")
	}
}

func TestLoadMissingDirIsColdStart(t *testing.T) {
	_, ok, err := Load(filepath.Join(t.TempDir(), "nope"))
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("missing dir reported a checkpoint")
	}
}

func TestLoadPicksNewest(t *testing.T) {
	dir := t.TempDir()
	for _, seq := range []int64{10, 30, 20} {
		if err := Save(dir, sample(seq, 3)); err != nil {
			t.Fatal(err)
		}
	}
	got, ok, _ := Load(dir)
	if !ok || got.NextSeq != 30 {
		t.Fatalf("got NextSeq %d, want 30", got.NextSeq)
	}
}

func TestCorruptNewestFallsBack(t *testing.T) {
	dir := t.TempDir()
	if err := Save(dir, sample(10, 5)); err != nil {
		t.Fatal(err)
	}
	if err := Save(dir, sample(20, 5)); err != nil {
		t.Fatal(err)
	}
	// Corrupt the newest file.
	path := filepath.Join(dir, name(20))
	data, _ := os.ReadFile(path)
	data[len(data)/2] ^= 0xFF
	os.WriteFile(path, data, 0o644)

	got, ok, err := Load(dir)
	if err != nil || !ok {
		t.Fatalf("load: ok=%v err=%v", ok, err)
	}
	if got.NextSeq != 10 {
		t.Fatalf("fallback loaded NextSeq %d, want 10", got.NextSeq)
	}
}

func TestAllCorruptIsColdStart(t *testing.T) {
	dir := t.TempDir()
	if err := Save(dir, sample(10, 5)); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name(10))
	os.WriteFile(path, []byte("junk"), 0o644)
	_, ok, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("corrupt-only dir reported a checkpoint")
	}
}

func TestGCKeepsNewest(t *testing.T) {
	dir := t.TempDir()
	for _, seq := range []int64{1, 2, 3, 4} {
		if err := Save(dir, sample(seq, 1)); err != nil {
			t.Fatal(err)
		}
	}
	if err := GC(dir, 2); err != nil {
		t.Fatal(err)
	}
	names, err := list(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 {
		t.Fatalf("after GC: %d files, want 2", len(names))
	}
	got, ok, _ := Load(dir)
	if !ok || got.NextSeq != 4 {
		t.Fatalf("after GC newest = %d, want 4", got.NextSeq)
	}
}

func TestLatestLSN(t *testing.T) {
	dir := t.TempDir()
	if _, ok, err := LatestLSN(dir); ok || err != nil {
		t.Fatalf("cold start: ok=%v err=%v", ok, err)
	}
	for _, seq := range []int64{10, 30, 20} {
		if err := Save(dir, sample(seq, 2)); err != nil {
			t.Fatal(err)
		}
	}
	lsn, ok, err := LatestLSN(dir)
	if err != nil || !ok {
		t.Fatalf("latest: ok=%v err=%v", ok, err)
	}
	if lsn != 30 {
		t.Fatalf("latest LSN = %d, want 30", lsn)
	}
	if got := sample(30, 2).LSN(); got != 30 {
		t.Fatalf("LSN() = %d, want 30", got)
	}
}

func TestGCMissingDirNoop(t *testing.T) {
	if err := GC(filepath.Join(t.TempDir(), "nope"), 1); err != nil {
		t.Fatal(err)
	}
}

func TestEmptyEdgeSet(t *testing.T) {
	dir := t.TempDir()
	want := Checkpoint{NextSeq: 0, Window: 5}
	if err := Save(dir, want); err != nil {
		t.Fatal(err)
	}
	got, ok, _ := Load(dir)
	if !ok {
		t.Fatal("not loaded")
	}
	if got.NextSeq != 0 || got.Window != 5 || len(got.Edges) != 0 {
		t.Fatalf("got %+v", got)
	}
}

// TestTruncatedTailEveryByte checks that any prefix of a valid
// checkpoint file is rejected (never mis-parsed) and never panics.
func TestTruncatedTailEveryByte(t *testing.T) {
	dir := t.TempDir()
	if err := Save(dir, sample(7, 9)); err != nil {
		t.Fatal(err)
	}
	full, err := os.ReadFile(filepath.Join(dir, name(7)))
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(full); cut++ {
		d2 := t.TempDir()
		os.WriteFile(filepath.Join(d2, name(7)), full[:cut], 0o644)
		if _, ok, _ := Load(d2); ok {
			t.Fatalf("truncated file (cut=%d) loaded successfully", cut)
		}
	}
}

// TestCodecQuick property-checks the checkpoint codec over random
// contents, including negative IDs and extreme values.
func TestCodecQuick(t *testing.T) {
	f := func(nextSeq, matches, discarded int64, window int32, raw []int64) bool {
		ck := Checkpoint{
			NextSeq:   nextSeq,
			Window:    graph.Timestamp(window),
			Matches:   matches,
			Discarded: discarded,
		}
		for i := 0; i+6 < len(raw); i += 7 {
			ck.Edges = append(ck.Edges, graph.Edge{
				ID:        graph.EdgeID(raw[i]),
				From:      graph.VertexID(raw[i+1]),
				To:        graph.VertexID(raw[i+2]),
				FromLabel: graph.Label(raw[i+3]),
				ToLabel:   graph.Label(raw[i+4]),
				EdgeLabel: graph.Label(raw[i+5]),
				Time:      graph.Timestamp(raw[i+6]),
			})
		}
		got, err := decode(encode(ck), "quick")
		if err != nil {
			return false
		}
		if len(got.Edges) == 0 && len(ck.Edges) == 0 {
			got.Edges, ck.Edges = nil, nil
		}
		return reflect.DeepEqual(got, ck)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
