// Package checkpoint persists and restores the durable state of a
// continuous searcher: the in-window edge suffix (from which all engine
// state — expansion lists, MS-trees, standing matches — is a pure
// function), the stream cursor, and the externally visible counters.
//
// A checkpoint bounds recovery work: restart cost is (re-feed the
// checkpointed window) + (replay the WAL suffix after the checkpoint)
// instead of replaying the entire log from the beginning of time.
//
// Checkpoints are written atomically (temp file + rename) and carry a
// whole-payload CRC so a torn or corrupted file is detected and skipped
// in favour of the previous one.
package checkpoint

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"timingsubg/internal/graph"
)

const (
	magic      = "TSCKPT01"
	filePrefix = "checkpoint-"
	fileSuffix = ".ckpt"
)

// ErrCorrupt reports an unreadable checkpoint file.
var ErrCorrupt = errors.New("checkpoint: corrupt file")

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Checkpoint is the durable state of a searcher at a cut point.
type Checkpoint struct {
	// NextSeq is the checkpoint's LSN: the WAL sequence number of the
	// first edge NOT covered by this checkpoint. Recovery replays the
	// WAL from here, and the checkpoint file itself is named by it, so
	// a checkpoint names the exact log position it covers. See LSN.
	NextSeq int64
	// Window is the sliding-window duration the searcher ran with.
	Window graph.Timestamp
	// Matches and Discarded are the counter values at the cut point.
	Matches   int64
	Discarded int64
	// Edges are the in-window edges at the cut point, oldest first,
	// with their original IDs and timestamps.
	Edges []graph.Edge
}

// LSN returns the log position this checkpoint covers: every WAL
// record below it is folded into the checkpointed window state, and
// recovery replays from it. It is the value the WAL's truncation gate
// (wal.Log.SetCheckpointLSN) keys on — segments wholly below the last
// durable checkpoint LSN are reclaimable.
func (ck Checkpoint) LSN() int64 { return ck.NextSeq }

// LatestLSN returns the LSN of the newest readable checkpoint in dir —
// the position below which the WAL may safely be truncated. ok is
// false on a cold start (no readable checkpoint).
func LatestLSN(dir string) (lsn int64, ok bool, err error) {
	ck, ok, err := Load(dir)
	if err != nil || !ok {
		return 0, ok, err
	}
	return ck.LSN(), true, nil
}

// Save atomically writes ck into dir. Older checkpoints are retained
// until GC removes them, so a crash mid-save can always fall back.
func Save(dir string, ck Checkpoint) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("checkpoint: mkdir: %w", err)
	}
	payload := encode(ck)
	buf := make([]byte, 0, len(magic)+len(payload)+4)
	buf = append(buf, magic...)
	buf = append(buf, payload...)
	buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(payload, crcTable))

	tmp, err := os.CreateTemp(dir, "ckpt-*.tmp")
	if err != nil {
		return fmt.Errorf("checkpoint: temp: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(buf); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("checkpoint: write: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("checkpoint: sync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("checkpoint: close: %w", err)
	}
	final := filepath.Join(dir, name(ck.NextSeq))
	if err := os.Rename(tmpName, final); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("checkpoint: rename: %w", err)
	}
	return nil
}

// Load returns the newest readable checkpoint in dir. ok is false when
// no checkpoint exists (or none is readable) — that is a cold start,
// not an error. Unreadable newer files are skipped with a fallback to
// older ones, implementing the save-then-GC crash contract.
func Load(dir string) (ck Checkpoint, ok bool, err error) {
	names, err := list(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return Checkpoint{}, false, nil
		}
		return Checkpoint{}, false, err
	}
	for i := len(names) - 1; i >= 0; i-- {
		ck, err := read(filepath.Join(dir, names[i]))
		if err == nil {
			return ck, true, nil
		}
	}
	return Checkpoint{}, false, nil
}

// GC removes all but the newest keep checkpoint files.
func GC(dir string, keep int) error {
	if keep < 1 {
		keep = 1
	}
	names, err := list(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return err
	}
	for i := 0; i < len(names)-keep; i++ {
		if err := os.Remove(filepath.Join(dir, names[i])); err != nil {
			return fmt.Errorf("checkpoint: gc: %w", err)
		}
	}
	return nil
}

func name(nextSeq int64) string {
	return fmt.Sprintf("%s%016d%s", filePrefix, nextSeq, fileSuffix)
}

// list returns checkpoint file names sorted oldest first.
func list(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, ent := range entries {
		n := ent.Name()
		if !strings.HasPrefix(n, filePrefix) || !strings.HasSuffix(n, fileSuffix) {
			continue
		}
		if _, err := strconv.ParseInt(strings.TrimSuffix(strings.TrimPrefix(n, filePrefix), fileSuffix), 10, 64); err != nil {
			continue
		}
		names = append(names, n)
	}
	sort.Strings(names)
	return names, nil
}

func encode(ck Checkpoint) []byte {
	b := binary.AppendVarint(nil, ck.NextSeq)
	b = binary.AppendVarint(b, int64(ck.Window))
	b = binary.AppendVarint(b, ck.Matches)
	b = binary.AppendVarint(b, ck.Discarded)
	b = binary.AppendUvarint(b, uint64(len(ck.Edges)))
	for _, e := range ck.Edges {
		b = binary.AppendVarint(b, int64(e.ID))
		b = binary.AppendVarint(b, int64(e.From))
		b = binary.AppendVarint(b, int64(e.To))
		b = binary.AppendVarint(b, int64(e.FromLabel))
		b = binary.AppendVarint(b, int64(e.ToLabel))
		b = binary.AppendVarint(b, int64(e.EdgeLabel))
		b = binary.AppendVarint(b, int64(e.Time))
	}
	return b
}

func read(path string) (Checkpoint, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Checkpoint{}, fmt.Errorf("checkpoint: read %s: %w", path, err)
	}
	if len(data) < len(magic)+4 || string(data[:len(magic)]) != magic {
		return Checkpoint{}, fmt.Errorf("%w: %s: bad header", ErrCorrupt, path)
	}
	payload := data[len(magic) : len(data)-4]
	crc := binary.LittleEndian.Uint32(data[len(data)-4:])
	if crc32.Checksum(payload, crcTable) != crc {
		return Checkpoint{}, fmt.Errorf("%w: %s: checksum mismatch", ErrCorrupt, path)
	}
	return decode(payload, path)
}

func decode(payload []byte, path string) (Checkpoint, error) {
	rd := payload
	get := func() (int64, error) {
		v, n := binary.Varint(rd)
		if n <= 0 {
			return 0, fmt.Errorf("%w: %s: truncated payload", ErrCorrupt, path)
		}
		rd = rd[n:]
		return v, nil
	}
	var ck Checkpoint
	var v int64
	var err error
	if ck.NextSeq, err = get(); err != nil {
		return ck, err
	}
	if v, err = get(); err != nil {
		return ck, err
	}
	ck.Window = graph.Timestamp(v)
	if ck.Matches, err = get(); err != nil {
		return ck, err
	}
	if ck.Discarded, err = get(); err != nil {
		return ck, err
	}
	cnt, n := binary.Uvarint(rd)
	if n <= 0 || cnt > uint64(len(rd)) {
		return ck, fmt.Errorf("%w: %s: bad edge count", ErrCorrupt, path)
	}
	rd = rd[n:]
	ck.Edges = make([]graph.Edge, 0, cnt)
	for i := uint64(0); i < cnt; i++ {
		var e graph.Edge
		if v, err = get(); err != nil {
			return ck, err
		}
		e.ID = graph.EdgeID(v)
		if v, err = get(); err != nil {
			return ck, err
		}
		e.From = graph.VertexID(v)
		if v, err = get(); err != nil {
			return ck, err
		}
		e.To = graph.VertexID(v)
		if v, err = get(); err != nil {
			return ck, err
		}
		e.FromLabel = graph.Label(v)
		if v, err = get(); err != nil {
			return ck, err
		}
		e.ToLabel = graph.Label(v)
		if v, err = get(); err != nil {
			return ck, err
		}
		e.EdgeLabel = graph.Label(v)
		if v, err = get(); err != nil {
			return ck, err
		}
		e.Time = graph.Timestamp(v)
		ck.Edges = append(ck.Edges, e)
	}
	if len(rd) != 0 {
		return ck, fmt.Errorf("%w: %s: trailing bytes", ErrCorrupt, path)
	}
	return ck, nil
}
