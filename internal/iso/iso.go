// Package iso implements static subgraph isomorphism search over window
// snapshots. It provides a shared edge-at-a-time backtracking core and
// three search-plan strategies reproducing the orderings and prunings of
// QuickSI (Shang et al.), TurboISO (Han et al.) and BoostISO (Ren &
// Wang), simplified as documented in DESIGN.md §5. The paper uses these
// as the static algorithms inside the IncMat baseline (Section VII-C).
//
// iso searches structure and labels only; timing-order constraints are a
// post-filter applied by callers, matching how the paper evaluates the
// baselines.
package iso

import (
	"sort"

	"timingsubg/internal/graph"
	"timingsubg/internal/match"
	"timingsubg/internal/query"
)

// Algorithm selects the search-plan strategy.
type Algorithm int

// Algorithms.
const (
	// QuickSI orders query edges infrequent-label-first along a spanning
	// sequence (the QI-sequence).
	QuickSI Algorithm = iota
	// TurboISO picks the start vertex by label-frequency/degree ranking
	// and explores BFS candidate regions from it.
	TurboISO
	// BoostISO uses the QuickSI ordering plus degree-based candidate
	// filtering derived from data-vertex relationships.
	BoostISO
)

// String names the algorithm as in the paper's figures.
func (a Algorithm) String() string {
	switch a {
	case QuickSI:
		return "QuickSI"
	case TurboISO:
		return "TurboISO"
	case BoostISO:
		return "BoostISO"
	}
	return "iso?"
}

// Options tunes a search.
type Options struct {
	// Required, when non-nil, restricts results to matches that include
	// this data edge (the IncMat delta search: only matches created by
	// the newly arrived edge are new).
	Required *graph.Edge
}

// FindAll enumerates every structural match of q in g, invoking yield for
// each; search stops when yield returns false. The Match passed to yield
// is scratch — clone to retain.
func FindAll(g *graph.Snapshot, q *query.Query, alg Algorithm, opt Options, yield func(*match.Match) bool) {
	s := &searcher{g: g, q: q, alg: alg, yield: yield}
	if opt.Required != nil {
		req := *opt.Required
		// Force the required edge into every result: try it at each query
		// edge it can match, ordering the remaining edges from there.
		for _, qe := range q.MatchingEdges(req) {
			m := match.New(q)
			if !m.CanBindStructural(q, qe, req) {
				continue
			}
			m.Bind(q, qe, req)
			order := s.planFrom(qe)
			if s.run(m, order, 0) {
				return
			}
		}
		return
	}
	order := s.plan()
	m := match.New(q)
	s.run(m, order, 0)
}

// Count returns the number of structural matches (convenience for tests).
func Count(g *graph.Snapshot, q *query.Query, alg Algorithm, opt Options) int {
	n := 0
	FindAll(g, q, alg, opt, func(*match.Match) bool {
		n++
		return true
	})
	return n
}

type searcher struct {
	g     *graph.Snapshot
	q     *query.Query
	alg   Algorithm
	yield func(*match.Match) bool
	stop  bool
}

// edgeTermFreq counts snapshot edges per (fromLabel, toLabel, edgeLabel)
// term, the selectivity signal QuickSI's QI-sequence uses.
func (s *searcher) edgeTermFreq() map[[3]int32]int {
	freq := make(map[[3]int32]int)
	s.g.Edges(func(e graph.Edge) bool {
		freq[[3]int32{int32(e.FromLabel), int32(e.ToLabel), int32(e.EdgeLabel)}]++
		return true
	})
	return freq
}

func (s *searcher) termOf(qe query.EdgeID) [3]int32 {
	e := s.q.Edge(qe)
	return [3]int32{int32(s.q.VertexLabel(e.From)), int32(s.q.VertexLabel(e.To)), int32(e.Label)}
}

// plan produces a connected query-edge ordering according to the
// algorithm's strategy.
func (s *searcher) plan() []query.EdgeID {
	switch s.alg {
	case TurboISO:
		return s.planTurbo()
	default: // QuickSI and BoostISO share the QI-sequence ordering.
		return s.planQuickSI()
	}
}

// planQuickSI starts from the rarest edge term and greedily appends the
// rarest adjacent edge, yielding a connected spanning sequence.
func (s *searcher) planQuickSI() []query.EdgeID {
	freq := s.edgeTermFreq()
	m := s.q.NumEdges()
	best := query.EdgeID(0)
	bestF := int(^uint(0) >> 1)
	for i := 0; i < m; i++ {
		if f := freq[s.termOf(query.EdgeID(i))]; f < bestF {
			bestF, best = f, query.EdgeID(i)
		}
	}
	return s.greedyOrder(best, func(c query.EdgeID) int { return freq[s.termOf(c)] })
}

// planTurbo ranks start vertices by label frequency divided by degree and
// BFS-orders edges outward from the best start vertex.
func (s *searcher) planTurbo() []query.EdgeID {
	// Label frequency over data vertices.
	vfreq := make(map[graph.Label]int)
	s.g.Vertices(func(_ graph.VertexID, l graph.Label) bool {
		vfreq[l]++
		return true
	})
	deg := make([]int, s.q.NumVertices())
	for v := range deg {
		deg[v] = len(s.q.Touching(query.VertexID(v)))
	}
	bestV := query.VertexID(0)
	bestScore := 1e18
	for v := 0; v < s.q.NumVertices(); v++ {
		score := float64(vfreq[s.q.VertexLabel(query.VertexID(v))]+1) / float64(deg[v]+1)
		if score < bestScore {
			bestScore, bestV = score, query.VertexID(v)
		}
	}
	// BFS over edges from bestV.
	var order []query.EdgeID
	used := make([]bool, s.q.NumEdges())
	frontier := []query.VertexID{bestV}
	inFront := make([]bool, s.q.NumVertices())
	inFront[bestV] = true
	for len(frontier) > 0 {
		var next []query.VertexID
		for _, v := range frontier {
			touching := append([]query.EdgeID(nil), s.q.Touching(v)...)
			sort.Slice(touching, func(i, j int) bool { return touching[i] < touching[j] })
			for _, eid := range touching {
				if used[eid] {
					continue
				}
				used[eid] = true
				order = append(order, eid)
				e := s.q.Edge(eid)
				for _, w := range []query.VertexID{e.From, e.To} {
					if !inFront[w] {
						inFront[w] = true
						next = append(next, w)
					}
				}
			}
		}
		frontier = next
	}
	return order
}

// planFrom produces a connected ordering beginning at seed (the query
// edge bound to the required data edge), preferring rare terms next.
func (s *searcher) planFrom(seed query.EdgeID) []query.EdgeID {
	freq := s.edgeTermFreq()
	full := s.greedyOrder(seed, func(c query.EdgeID) int { return freq[s.termOf(c)] })
	return full[1:] // seed is pre-bound
}

// greedyOrder grows a connected edge sequence from start, choosing at
// each step the adjacent unused edge minimizing cost.
func (s *searcher) greedyOrder(start query.EdgeID, cost func(query.EdgeID) int) []query.EdgeID {
	m := s.q.NumEdges()
	order := []query.EdgeID{start}
	used := make([]bool, m)
	used[start] = true
	for len(order) < m {
		best := query.EdgeID(-1)
		bestC := int(^uint(0) >> 1)
		for c := 0; c < m; c++ {
			if used[c] {
				continue
			}
			adj := false
			for _, o := range order {
				if s.q.EdgesAdjacent(query.EdgeID(c), o) {
					adj = true
					break
				}
			}
			if !adj {
				continue
			}
			if cc := cost(query.EdgeID(c)); cc < bestC {
				bestC, best = cc, query.EdgeID(c)
			}
		}
		if best < 0 {
			// Disconnected remainder cannot happen for connected queries;
			// append the smallest unused edge as a safety valve.
			for c := 0; c < m; c++ {
				if !used[c] {
					best = query.EdgeID(c)
					break
				}
			}
		}
		used[best] = true
		order = append(order, best)
	}
	return order
}

// run backtracks over order starting at position pos; returns true when
// the search should stop.
func (s *searcher) run(m *match.Match, order []query.EdgeID, pos int) bool {
	if s.stop {
		return true
	}
	if pos == len(order) {
		if !s.yield(m) {
			s.stop = true
		}
		return s.stop
	}
	qe := order[pos]
	e := s.q.Edge(qe)
	bf := m.Vtx[e.From]
	bt := m.Vtx[e.To]
	try := func(d graph.Edge) bool {
		if !s.candidateOK(qe, d) {
			return false
		}
		if !m.CanBindStructural(s.q, qe, d) {
			return false
		}
		m.Bind(s.q, qe, d)
		stopped := s.run(m, order, pos+1)
		m.Unbind(s.q, qe)
		return stopped
	}
	switch {
	case bf != match.Unbound:
		for _, id := range s.g.Out(graph.VertexID(bf)) {
			if d, ok := s.g.Edge(id); ok {
				if try(d) {
					return true
				}
			}
		}
	case bt != match.Unbound:
		for _, id := range s.g.In(graph.VertexID(bt)) {
			if d, ok := s.g.Edge(id); ok {
				if try(d) {
					return true
				}
			}
		}
	default:
		// First edge of the order: seed from vertices carrying the query
		// source label.
		for _, v := range s.g.VerticesWithLabel(s.q.VertexLabel(e.From)) {
			for _, id := range s.g.Out(v) {
				if d, ok := s.g.Edge(id); ok {
					if try(d) {
						return true
					}
				}
			}
		}
	}
	return s.stop
}

// candidateOK applies the per-algorithm candidate filter. BoostISO adds
// the degree-containment rule derived from its vertex relationships: a
// data vertex can host a query vertex only if its in/out degrees dominate
// the query vertex's.
func (s *searcher) candidateOK(qe query.EdgeID, d graph.Edge) bool {
	if s.alg != BoostISO {
		return true
	}
	e := s.q.Edge(qe)
	if len(s.g.Out(d.From)) < s.outDeg(e.From) || len(s.g.In(d.From)) < s.inDeg(e.From) {
		return false
	}
	if len(s.g.Out(d.To)) < s.outDeg(e.To) || len(s.g.In(d.To)) < s.inDeg(e.To) {
		return false
	}
	return true
}

func (s *searcher) outDeg(v query.VertexID) int {
	n := 0
	for _, eid := range s.q.Touching(v) {
		if s.q.Edge(eid).From == v {
			n++
		}
	}
	return n
}

func (s *searcher) inDeg(v query.VertexID) int {
	n := 0
	for _, eid := range s.q.Touching(v) {
		if s.q.Edge(eid).To == v {
			n++
		}
	}
	return n
}
