package iso

import (
	"fmt"
	"testing"

	"timingsubg/internal/datagen"
	"timingsubg/internal/graph"
	"timingsubg/internal/match"
	"timingsubg/internal/query"
)

func algorithms() []Algorithm { return []Algorithm{QuickSI, TurboISO, BoostISO} }

// triangleQuery builds A→B→C→A.
func triangleQuery(t *testing.T, labels *graph.Labels) *query.Query {
	t.Helper()
	la, lb, lc := labels.Intern("A"), labels.Intern("B"), labels.Intern("C")
	b := query.NewBuilder()
	va, vb, vc := b.AddVertex(la), b.AddVertex(lb), b.AddVertex(lc)
	b.AddEdge(va, vb)
	b.AddEdge(vb, vc)
	b.AddEdge(vc, va)
	q, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return q
}

func TestTriangleCount(t *testing.T) {
	labels := graph.NewLabels()
	q := triangleQuery(t, labels)
	la, lb, lc := labels.Intern("A"), labels.Intern("B"), labels.Intern("C")

	// Two disjoint triangles plus a decoy path.
	s := graph.NewSnapshot()
	add := func(id, f, to int64, fl, tl graph.Label) {
		s.Add(graph.Edge{ID: graph.EdgeID(id), From: graph.VertexID(f), To: graph.VertexID(to),
			FromLabel: fl, ToLabel: tl, Time: graph.Timestamp(id)})
	}
	add(1, 1, 2, la, lb)
	add(2, 2, 3, lb, lc)
	add(3, 3, 1, lc, la)
	add(4, 11, 12, la, lb)
	add(5, 12, 13, lb, lc)
	add(6, 13, 11, lc, la)
	add(7, 1, 13, la, lc) // decoy, wrong direction for the triangle

	for _, alg := range algorithms() {
		if got := Count(s, q, alg, Options{}); got != 2 {
			t.Errorf("%s: want 2 triangles, got %d", alg, got)
		}
	}
}

func TestRequiredEdgeRestriction(t *testing.T) {
	labels := graph.NewLabels()
	q := triangleQuery(t, labels)
	la, lb, lc := labels.Intern("A"), labels.Intern("B"), labels.Intern("C")
	s := graph.NewSnapshot()
	mk := func(id, f, to int64, fl, tl graph.Label) graph.Edge {
		e := graph.Edge{ID: graph.EdgeID(id), From: graph.VertexID(f), To: graph.VertexID(to),
			FromLabel: fl, ToLabel: tl}
		s.Add(e)
		return e
	}
	mk(1, 1, 2, la, lb)
	mk(2, 2, 3, lb, lc)
	mk(3, 3, 1, lc, la)
	mk(4, 11, 12, la, lb)
	mk(5, 12, 13, lb, lc)
	req := mk(6, 13, 11, lc, la)

	for _, alg := range algorithms() {
		n := 0
		FindAll(s, q, alg, Options{Required: &req}, func(m *match.Match) bool {
			if !m.HasDataEdge(req.ID) {
				t.Errorf("%s: match without the required edge", alg)
			}
			n++
			return true
		})
		if n != 1 {
			t.Errorf("%s: want exactly the second triangle, got %d", alg, n)
		}
	}
}

func TestYieldStopsSearch(t *testing.T) {
	labels := graph.NewLabels()
	la, lb := labels.Intern("A"), labels.Intern("B")
	b := query.NewBuilder()
	va, vb := b.AddVertex(la), b.AddVertex(lb)
	b.AddEdge(va, vb)
	q, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	s := graph.NewSnapshot()
	for i := int64(0); i < 10; i++ {
		s.Add(graph.Edge{ID: graph.EdgeID(i), From: graph.VertexID(i), To: graph.VertexID(100 + i),
			FromLabel: la, ToLabel: lb})
	}
	for _, alg := range algorithms() {
		n := 0
		FindAll(s, q, alg, Options{}, func(*match.Match) bool {
			n++
			return false
		})
		if n != 1 {
			t.Errorf("%s: yield=false must stop after the first match, got %d", alg, n)
		}
	}
}

// TestAlgorithmsAgree compares the three strategies' match sets on random
// snapshots — the orderings differ but the result sets must not.
func TestAlgorithmsAgree(t *testing.T) {
	for trial := 0; trial < 5; trial++ {
		labels := graph.NewLabels()
		gen := datagen.New(datagen.WikiTalk, labels, datagen.Config{Vertices: 40, Seed: int64(trial + 1)})
		edges := gen.Take(250)
		snap := graph.SnapshotOf(edges)

		// A 3-edge path query over the letter alphabet.
		b := query.NewBuilder()
		v0 := b.AddVertex(edges[0].FromLabel)
		v1 := b.AddVertex(edges[0].ToLabel)
		v2 := b.AddVertex(edges[1].FromLabel)
		b.AddEdge(v0, v1)
		b.AddEdge(v2, v1)
		q, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}

		counts := map[Algorithm]map[string]bool{}
		for _, alg := range algorithms() {
			set := map[string]bool{}
			FindAll(snap, q, alg, Options{}, func(m *match.Match) bool {
				set[m.Key()] = true
				return true
			})
			counts[alg] = set
		}
		for _, alg := range algorithms()[1:] {
			if len(counts[alg]) != len(counts[QuickSI]) {
				t.Errorf("trial %d: %s found %d matches, QuickSI %d",
					trial, alg, len(counts[alg]), len(counts[QuickSI]))
				continue
			}
			for k := range counts[QuickSI] {
				if !counts[alg][k] {
					t.Errorf("trial %d: %s missing %s", trial, alg, k)
				}
			}
		}
	}
}

// TestNoDuplicateResults verifies the backtracker enumerates each
// assignment exactly once even with parallel data edges (multigraph).
func TestNoDuplicateResults(t *testing.T) {
	labels := graph.NewLabels()
	la, lb := labels.Intern("A"), labels.Intern("B")
	b := query.NewBuilder()
	va, vb := b.AddVertex(la), b.AddVertex(lb)
	b.AddEdge(va, vb)
	q, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	s := graph.NewSnapshot()
	// Three parallel data edges 1→2.
	for i := int64(0); i < 3; i++ {
		s.Add(graph.Edge{ID: graph.EdgeID(i), From: 1, To: 2, FromLabel: la, ToLabel: lb,
			Time: graph.Timestamp(i)})
	}
	for _, alg := range algorithms() {
		seen := map[string]int{}
		FindAll(s, q, alg, Options{}, func(m *match.Match) bool {
			seen[m.Key()]++
			return true
		})
		if len(seen) != 3 {
			t.Errorf("%s: want 3 distinct matches, got %d", alg, len(seen))
		}
		for k, n := range seen {
			if n != 1 {
				t.Errorf("%s: match %s enumerated %d times", alg, k, n)
			}
		}
	}
}

func TestAlgorithmString(t *testing.T) {
	for _, alg := range algorithms() {
		if alg.String() == "iso?" {
			t.Errorf("missing name for %d", alg)
		}
	}
	if fmt.Sprint(Algorithm(99)) != "iso?" {
		t.Error("unknown algorithm should format safely")
	}
}
