package iso

import (
	"testing"

	"timingsubg/internal/datagen"
	"timingsubg/internal/graph"
	"timingsubg/internal/match"
	"timingsubg/internal/query"
	"timingsubg/internal/querygen"
)

// benchSetup builds a snapshot and a query for static-search benchmarks.
func benchSetup(b *testing.B, size int) (*graph.Snapshot, *query.Query) {
	b.Helper()
	labels := graph.NewLabels()
	gen := datagen.New(datagen.WikiTalk, labels, datagen.Config{Vertices: 400, Seed: 11})
	edges := gen.Take(1500)
	q, _, err := querygen.Generate(edges, querygen.Config{Size: size, Order: querygen.EmptyOrder, Seed: 3})
	if err != nil {
		b.Skipf("query generation: %v", err)
	}
	return graph.SnapshotOf(edges), q
}

// BenchmarkFindAll compares the three search-plan strategies on one
// snapshot (the static engines inside the IncMat baseline).
func BenchmarkFindAll(b *testing.B) {
	snap, q := benchSetup(b, 4)
	for _, alg := range []Algorithm{QuickSI, TurboISO, BoostISO} {
		b.Run(alg.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				n := 0
				FindAll(snap, q, alg, Options{}, func(*match.Match) bool {
					n++
					return true
				})
			}
		})
	}
}

// BenchmarkFindRequired measures the IncMat delta search: matches
// restricted to contain one specific edge.
func BenchmarkFindRequired(b *testing.B) {
	snap, q := benchSetup(b, 4)
	var req graph.Edge
	snap.Edges(func(e graph.Edge) bool {
		if len(q.MatchingEdges(e)) > 0 {
			req = e
			return false
		}
		return true
	})
	if req.ID == 0 && req.From == 0 && req.To == 0 {
		b.Skip("no matching edge")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FindAll(snap, q, QuickSI, Options{Required: &req}, func(*match.Match) bool { return true })
	}
}
