package bench

import (
	"time"

	"timingsubg/internal/datagen"
	"timingsubg/internal/graph"
	"timingsubg/internal/query"
	"timingsubg/internal/querygen"
)

// Config scales the experiment suite. The paper's absolute sizes (windows
// of 10K-50K inter-arrival units over hundreds of millions of edges) are
// scaled down so every figure regenerates in seconds on a laptop; shapes,
// not absolute numbers, are the reproduction target (EXPERIMENTS.md).
type Config struct {
	// Datasets to evaluate (default: all three).
	Datasets []datagen.Dataset
	// Windows are the |W| values in stream units (Fig. 15/17/19: the
	// paper's 10K..50K scaled by Scale).
	Windows []int
	// QuerySizes are |E(Q)| values (Fig. 16/18/20: 6..21).
	QuerySizes []int
	// DefaultWindow is used when the window is fixed (Figs. 16/18/21/23).
	DefaultWindow int
	// DefaultQuerySize is used when the size is fixed (Figs. 15/17/19).
	DefaultQuerySize int
	// QueriesPerSetting is how many query graphs are generated per
	// setting (the paper uses 10 graphs × 5 orders; scaled down).
	QueriesPerSetting int
	// OrdersPerGraph is how many timing orders are drawn per graph: one
	// full, one empty, rest random (paper Section VII-B).
	OrdersPerGraph int
	// StreamLen is how many edges are measured per run.
	StreamLen int
	// Vertices is the generator population.
	Vertices int
	// Threads are the worker counts for the speedup figures (1..5).
	Threads []int
	// KValues are the decomposition sizes for Figs. 23/24.
	KValues []int
	// KQuerySize is the query size for the decomposition-size experiment
	// (the paper fixes 12).
	KQuerySize int
	// MaxRunTime bounds each (method, query) run; truncated cells are
	// reported as such (0 = unlimited).
	MaxRunTime time.Duration
	// Seed drives all randomness.
	Seed int64
}

// DefaultConfig returns the scaled-down suite used by `go test -bench`
// and `cmd/experiments` defaults: every figure in seconds.
func DefaultConfig() Config {
	return Config{
		Datasets:          datagen.Datasets(),
		Windows:           []int{1000, 2000, 3000, 4000, 5000},
		QuerySizes:        []int{6, 9, 12, 15},
		DefaultWindow:     3000,
		DefaultQuerySize:  6,
		QueriesPerSetting: 1,
		OrdersPerGraph:    3,
		StreamLen:         2000,
		Vertices:          2500,
		Threads:           []int{1, 2, 3, 4, 5},
		KValues:           []int{1, 3, 6, 9, 12},
		KQuerySize:        12,
		MaxRunTime:        8 * time.Second,
		Seed:              42,
	}
}

// QuickConfig is a minimal configuration for smoke tests.
func QuickConfig() Config {
	c := DefaultConfig()
	c.Windows = []int{500, 1000}
	c.QuerySizes = []int{4, 6}
	c.DefaultWindow = 800
	c.DefaultQuerySize = 4
	c.QueriesPerSetting = 1
	c.OrdersPerGraph = 2
	c.StreamLen = 1200
	c.Vertices = 1000
	c.Threads = []int{1, 2}
	c.KValues = []int{1, 3, 6}
	c.KQuerySize = 6
	c.MaxRunTime = 5 * time.Second
	return c
}

// QuerySet generates the benchmark queries for one dataset and query
// size following Section VII-B: QueriesPerSetting random-walk graphs,
// each with OrdersPerGraph timing orders (one full, one empty, the rest
// random).
func (c Config) QuerySet(ds datagen.Dataset, size int, warmup []graph.Edge) []GeneratedQuery {
	var out []GeneratedQuery
	for g := 0; g < c.QueriesPerSetting; g++ {
		for o := 0; o < c.OrdersPerGraph; o++ {
			kind := querygen.RandomOrder
			switch o {
			case 0:
				kind = querygen.FullOrder
			case 1:
				kind = querygen.EmptyOrder
			}
			seed := c.Seed + int64(int(ds)*10007+size*211+g*31+o)
			q, witness, err := querygen.Generate(warmup, querygen.Config{
				Size: size, Order: kind, Seed: seed})
			if err != nil {
				continue
			}
			out = append(out, GeneratedQuery{Query: q, Witness: witness, Order: kind})
		}
	}
	return out
}

// GeneratedQuery pairs a query with its embedding witness.
type GeneratedQuery struct {
	Query   *query.Query
	Witness []graph.Edge
	Order   querygen.OrderKind
}
