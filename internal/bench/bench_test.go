package bench

import (
	"bytes"
	"os"
	"strings"
	"testing"

	"timingsubg/internal/core"
	"timingsubg/internal/datagen"
	"timingsubg/internal/graph"
	"timingsubg/internal/querygen"
)

func tinyConfig() Config {
	c := QuickConfig()
	c.Windows = []int{300}
	c.QuerySizes = []int{4}
	c.DefaultWindow = 300
	c.DefaultQuerySize = 4
	c.QueriesPerSetting = 1
	c.OrdersPerGraph = 1 // full order only: cheapest
	c.StreamLen = 600
	c.Vertices = 600
	c.Threads = []int{1, 2}
	c.KValues = []int{1, 4}
	c.KQuerySize = 4
	return c
}

func TestMethodsCoverAll(t *testing.T) {
	if len(Methods()) != 6 {
		t.Fatalf("the paper compares 6 methods, got %d", len(Methods()))
	}
	seen := map[string]bool{}
	for _, m := range Methods() {
		name := m.String()
		if seen[name] || strings.HasPrefix(name, "method#") {
			t.Errorf("bad method name %q", name)
		}
		seen[name] = true
	}
}

func TestNewMatcherAllMethods(t *testing.T) {
	c := tinyConfig()
	warm, edges := c.stream(datagen.WikiTalk, c.DefaultWindow)
	qs := c.QuerySet(datagen.WikiTalk, 4, warm)
	if len(qs) == 0 {
		t.Skip("no query generated")
	}
	var counts []int64
	for _, m := range Methods() {
		r := Run(NewMatcher(m, qs[0].Query), edges, graph.Timestamp(c.DefaultWindow))
		if r.Throughput <= 0 {
			t.Errorf("%s: non-positive throughput", m)
		}
		if r.AvgSpace < 0 {
			t.Errorf("%s: negative space", m)
		}
		counts = append(counts, r.Matches)
	}
	for i := 1; i < len(counts); i++ {
		if counts[i] != counts[0] {
			t.Errorf("method %s found %d matches, %s found %d",
				Methods()[i], counts[i], Methods()[0], counts[0])
		}
	}
}

func TestRunParallelConsistent(t *testing.T) {
	c := tinyConfig()
	warm, edges := c.stream(datagen.SocialStream, c.DefaultWindow)
	qs := c.QuerySet(datagen.SocialStream, 4, warm)
	if len(qs) == 0 {
		t.Skip("no query generated")
	}
	_, m1 := RunParallel(qs[0].Query, core.FineGrained, 1, edges, graph.Timestamp(c.DefaultWindow))
	_, m2 := RunParallel(qs[0].Query, core.FineGrained, 3, edges, graph.Timestamp(c.DefaultWindow))
	if m1 != m2 {
		t.Errorf("parallel match counts differ: %d vs %d", m1, m2)
	}
}

func TestQuerySetShape(t *testing.T) {
	c := tinyConfig()
	c.OrdersPerGraph = 3
	c.QueriesPerSetting = 2
	warm, _ := c.stream(datagen.WikiTalk, c.DefaultWindow)
	qs := c.QuerySet(datagen.WikiTalk, 4, warm)
	if len(qs) == 0 {
		t.Skip("no queries generated")
	}
	var full, empty int
	for _, gq := range qs {
		if gq.Query.NumEdges() != 4 {
			t.Errorf("query size drifted: %d", gq.Query.NumEdges())
		}
		switch gq.Order {
		case querygen.FullOrder:
			full++
		case querygen.EmptyOrder:
			empty++
		}
	}
	if full == 0 || empty == 0 {
		t.Error("query set must include one full and one empty order per graph")
	}
}

func TestFigure21Ablation(t *testing.T) {
	c := tinyConfig()
	tf, sf := Fig21(c)
	if len(tf.Panels) != 1 || len(sf.Panels) != 1 {
		t.Fatal("fig21 must have one panel each")
	}
	if len(tf.Panels[0].Series) != 4 {
		t.Fatalf("fig21 compares 4 variants, got %d", len(tf.Panels[0].Series))
	}
	for _, s := range tf.Panels[0].Series {
		if len(s.Y) == 0 {
			t.Errorf("variant %s has no measurements", s.Label)
		}
	}
}

func TestFig23and24(t *testing.T) {
	c := tinyConfig()
	c.Datasets = []datagen.Dataset{datagen.WikiTalk}
	tput, space := Fig23and24(c)
	if len(tput.Panels) != 1 || len(space.Panels) != 1 {
		t.Fatal("one panel per dataset")
	}
	found := false
	for _, s := range tput.Panels[0].Series {
		if len(s.X) > 0 {
			found = true
		}
	}
	if !found {
		t.Error("fig23 produced no data points")
	}
}

func TestRenderOutput(t *testing.T) {
	fig := Figure{
		Name: "FigX", Title: "Test", XLabel: "X", YLabel: "Y",
		Panels: []Panel{{
			Name: "panel",
			Series: []Series{
				{Label: "s1", X: []float64{1, 2}, Y: []float64{10, 2000000}},
				{Label: "s2", X: []float64{1}, Y: []float64{0.5}},
			},
		}},
	}
	var buf bytes.Buffer
	Render(&buf, fig)
	out := buf.String()
	for _, want := range []string{"FigX", "panel", "s1", "s2", "2e+06", "0.50", "-"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered output missing %q:\n%s", want, out)
		}
	}
}

func TestCostModelTable(t *testing.T) {
	c := tinyConfig()
	warm, _ := c.stream(datagen.WikiTalk, c.DefaultWindow)
	qs := c.QuerySet(datagen.WikiTalk, 4, warm)
	if len(qs) == 0 {
		t.Skip("no query")
	}
	s := CostModelTable(qs[0].Query, []int{1, 2, 3, 4})
	for i := 1; i < len(s.Y); i++ {
		if s.Y[i] <= s.Y[i-1] {
			t.Error("Theorem 7 cost must increase with k")
		}
	}
}

func TestWriteCSV(t *testing.T) {
	fig := Figure{
		Name: "FigT", XLabel: "Window Size",
		Panels: []Panel{{
			Name: "Net/Flow",
			Series: []Series{
				{Label: "Timing", X: []float64{1, 2}, Y: []float64{10, 20}},
				{Label: "SJ-tree", X: []float64{1}, Y: []float64{5}},
			},
		}},
	}
	dir := t.TempDir()
	if err := WriteCSV(dir, fig); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(dir + "/FigT_Net-Flow.csv")
	if err != nil {
		t.Fatal(err)
	}
	got := string(data)
	want := "Window_Size,Timing,SJ-tree\n1,10\n" // prefix check below
	_ = want
	if !strings.HasPrefix(got, "Window_Size,Timing,SJ-tree\n") {
		t.Errorf("header wrong:\n%s", got)
	}
	if !strings.Contains(got, "1,10,5") || !strings.Contains(got, "2,20,") {
		t.Errorf("rows wrong:\n%s", got)
	}
}
