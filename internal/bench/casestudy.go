package bench

import (
	"fmt"
	"io"
	"math/rand"

	"timingsubg/internal/core"
	"timingsubg/internal/graph"
	"timingsubg/internal/match"
	"timingsubg/internal/query"
)

// CaseStudyResult is the outcome of the Fig. 22 scenario: the planted
// ZeuS-style incident and whether the monitor caught it.
type CaseStudyResult struct {
	Detected    bool
	Alerts      int64
	FalseAlerts int64
	Victim      graph.VertexID
	WebServer   graph.VertexID
	CCServer    graph.VertexID
	CommandAt   graph.Timestamp
	ExfilAt     graph.Timestamp
	Discarded   int64
	Edges       int64
}

// Planted entity IDs, chosen outside the background host range.
const (
	csVictim = 9_000_001
	csWeb    = 9_000_002
	csCC     = 9_000_003
)

// CaseStudy reproduces the paper's Section VII-F experiment: the Fig. 1
// exfiltration pattern (browse → script → register → command → exfil,
// totally ordered) is monitored with a 30-unit window over synthetic
// traffic in which one incident is planted among background chatter.
func CaseStudy(seed int64, background int) CaseStudyResult {
	labels := graph.NewLabels()
	ip := labels.Intern("IP")
	http := labels.Intern("http")
	tcp := labels.Intern("tcp")
	big := labels.Intern("large-msg")

	b := query.NewBuilder()
	v := b.AddVertex(ip)
	w := b.AddVertex(ip)
	c := b.AddVertex(ip)
	t1 := b.AddLabeledEdge(v, w, http)
	t2 := b.AddLabeledEdge(w, v, http)
	t3 := b.AddLabeledEdge(v, c, tcp)
	t4 := b.AddLabeledEdge(c, v, tcp)
	t5 := b.AddLabeledEdge(v, c, big)
	b.Before(t1, t2)
	b.Before(t2, t3)
	b.Before(t3, t4)
	b.Before(t4, t5)
	q, err := b.Build()
	if err != nil {
		panic(err) // static construction
	}

	var res CaseStudyResult
	eng := core.New(q, core.Config{OnMatch: func(m *match.Match) {
		res.Alerts++
		if m.Vtx[v] == csVictim && m.Vtx[w] == csWeb && m.Vtx[c] == csCC {
			res.Detected = true
			res.Victim, res.WebServer, res.CCServer = m.Vtx[v], m.Vtx[w], m.Vtx[c]
			res.CommandAt = m.Edges[t4].Time
			res.ExfilAt = m.Edges[t5].Time
		} else {
			res.FalseAlerts++
		}
	}})

	rng := rand.New(rand.NewSource(seed))
	st := graph.NewStream(30)
	tick := graph.Timestamp(0)
	feed := func(from, to graph.VertexID, lbl graph.Label) {
		tick++
		stored, expired, err := st.Push(graph.Edge{
			From: from, To: to, FromLabel: ip, ToLabel: ip, EdgeLabel: lbl, Time: tick,
		})
		if err != nil {
			panic(err)
		}
		eng.Process(stored, expired)
	}
	noise := func(n int) {
		for i := 0; i < n; i++ {
			a := graph.VertexID(rng.Int63n(200))
			bb := graph.VertexID(rng.Int63n(200))
			if a == bb {
				bb = (bb + 1) % 200
			}
			lbl := http
			if rng.Intn(2) == 0 {
				lbl = tcp
			}
			feed(a, bb, lbl)
		}
	}
	noise(background / 2)
	feed(csVictim, csWeb, http) // t1: browse compromised site
	noise(3)
	feed(csWeb, csVictim, http) // t2: malware script
	noise(3)
	feed(csVictim, csCC, tcp) // t3: register at C&C
	noise(2)
	feed(csCC, csVictim, tcp) // t4: command
	noise(2)
	feed(csVictim, csCC, big) // t5: exfiltration
	noise(background / 2)

	res.Discarded = eng.Stats().Discarded.Load()
	res.Edges = eng.Stats().EdgesIn.Load()
	return res
}

// RenderCaseStudy prints the Fig. 22 outcome.
func RenderCaseStudy(w io.Writer, r CaseStudyResult) {
	fmt.Fprintln(w, "== Fig22: Case study — information exfiltration detection ==")
	fmt.Fprintf(w, "traffic: %d edges, %d filtered as discardable\n", r.Edges, r.Discarded)
	if r.Detected {
		fmt.Fprintf(w, "DETECTED: victim=%d web=%d c&c=%d (command@%d, exfiltration@%d)\n",
			r.Victim, r.WebServer, r.CCServer, r.CommandAt, r.ExfilAt)
	} else {
		fmt.Fprintln(w, "NOT DETECTED — investigate")
	}
	fmt.Fprintf(w, "alerts: %d (%d not the planted incident)\n\n", r.Alerts, r.FalseAlerts)
}

// RenderTable1 prints the related-work feature matrix (Table I).
func RenderTable1(w io.Writer) {
	fmt.Fprintln(w, "== Table I: Related work vs. this method ==")
	rows := [][]string{
		{"Method", "SubgraphIso", "TimingOrder", "Exact"},
		{"Timing (this library)", "yes", "yes", "yes"},
		{"SJ-tree (Choudhury et al.)", "yes", "no (post-filter here)", "yes"},
		{"Graph simulation (Song et al.)", "no", "yes", "yes"},
		{"Gao et al.", "yes", "no", "no"},
		{"Chen et al.", "yes", "no", "no"},
		{"IncMat (Fan et al.)", "yes", "no (post-filter here)", "yes"},
	}
	for _, row := range rows {
		fmt.Fprintf(w, "%-32s %-12s %-22s %s\n", row[0], row[1], row[2], row[3])
	}
	fmt.Fprintln(w)
}
