package bench

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// WriteCSV writes one CSV file per panel of fig into dir (created if
// missing), named <FigName>_<panel>.csv with the x column first and one
// column per series — ready for any plotting tool.
func WriteCSV(dir string, fig Figure) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, p := range fig.Panels {
		name := fmt.Sprintf("%s_%s.csv", fig.Name, sanitize(p.Name))
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			return err
		}
		if err := writePanelCSV(f, fig.XLabel, p); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}

func writePanelCSV(f *os.File, xlabel string, p Panel) error {
	header := []string{sanitize(xlabel)}
	for _, s := range p.Series {
		header = append(header, sanitize(s.Label))
	}
	if _, err := fmt.Fprintln(f, strings.Join(header, ",")); err != nil {
		return err
	}
	var xs []float64
	seen := map[float64]bool{}
	for _, s := range p.Series {
		for _, x := range s.X {
			if !seen[x] {
				seen[x] = true
				xs = append(xs, x)
			}
		}
	}
	for _, x := range xs {
		row := []string{trimFloat(x)}
		for _, s := range p.Series {
			if v, ok := lookup(s, x); ok {
				row = append(row, fmt.Sprintf("%g", v))
			} else {
				row = append(row, "")
			}
		}
		if _, err := fmt.Fprintln(f, strings.Join(row, ",")); err != nil {
			return err
		}
	}
	return nil
}

func sanitize(s string) string {
	s = strings.ReplaceAll(s, ",", ";")
	s = strings.ReplaceAll(s, " ", "_")
	s = strings.ReplaceAll(s, "/", "-")
	return s
}
