package bench

import (
	"time"

	"timingsubg/internal/core"
	"timingsubg/internal/graph"
	"timingsubg/internal/query"
)

// RunResult is the measurement of one (method, query, stream) run.
type RunResult struct {
	Throughput float64 // edges handled per second (inserts; expiry included in cost)
	AvgSpace   int64   // average resident bytes sampled across the run
	Matches    int64   // matches reported
	Elapsed    time.Duration
	// Truncated is set when a time budget stopped the run early; the
	// throughput is then measured over the edges actually processed.
	Truncated bool
}

// spaceSamples is how many space probes a run takes.
const spaceSamples = 16

// Run drives matcher over the edges with the given sliding window and
// measures throughput and average space (the paper's metrics, Section
// VII-C: throughput in edges/second, space as the per-window average).
func Run(m Matcher, edges []graph.Edge, window graph.Timestamp) RunResult {
	return RunBudget(m, edges, window, 0)
}

// RunBudget is Run with a wall-clock budget (0 = unlimited). A cell that
// exceeds the budget stops early with Truncated set; per-edge throughput
// stays meaningful because it is computed over the processed prefix.
// Figure sweeps print a note for truncated cells — bounded cells must
// never masquerade as full measurements.
func RunBudget(m Matcher, edges []graph.Edge, window graph.Timestamp, budget time.Duration) RunResult {
	st := graph.NewStream(window)
	every := len(edges) / spaceSamples
	if every == 0 {
		every = 1
	}
	var spaceSum int64
	var samples int64
	processed := 0
	truncated := false
	start := time.Now()
	for i, e := range edges {
		stored, expired, err := st.Push(e)
		if err != nil {
			panic(err) // generators produce strictly increasing timestamps
		}
		m.Process(stored, expired)
		processed++
		if (i+1)%every == 0 {
			spaceSum += m.SpaceBytes()
			samples++
		}
		if budget > 0 && i%256 == 255 && time.Since(start) > budget {
			truncated = true
			break
		}
	}
	elapsed := time.Since(start)
	if samples == 0 {
		spaceSum, samples = m.SpaceBytes(), 1
	}
	return RunResult{
		Throughput: float64(processed) / elapsed.Seconds(),
		AvgSpace:   spaceSum / samples,
		Matches:    m.MatchCount(),
		Elapsed:    elapsed,
		Truncated:  truncated,
	}
}

// RunParallel measures the concurrent Timing engine with the given
// locking scheme and worker count, returning elapsed wall time. Speedup
// figures divide the single-thread time by this.
func RunParallel(q *query.Query, scheme core.LockScheme, workers int, edges []graph.Edge, window graph.Timestamp) (time.Duration, int64) {
	eng := core.New(q, core.Config{Storage: core.MSTree})
	par := core.NewParallel(eng, scheme, workers)
	st := graph.NewStream(window)
	start := time.Now()
	for _, e := range edges {
		stored, expired, err := st.Push(e)
		if err != nil {
			panic(err)
		}
		par.Process(stored, expired)
	}
	par.Wait()
	return time.Since(start), eng.Stats().Matches.Load()
}
