package bench

import (
	"fmt"
	"math/rand"
	"os"

	"timingsubg/internal/core"
	"timingsubg/internal/datagen"
	"timingsubg/internal/graph"
	"timingsubg/internal/query"
	"timingsubg/internal/querygen"
)

// Series is one plotted line: Y[i] measured at X[i].
type Series struct {
	Label string
	X     []float64
	Y     []float64
}

// Panel is one subplot (one dataset in the paper's 3-panel figures).
type Panel struct {
	Name   string
	Series []Series
}

// Figure is one reproduced evaluation figure.
type Figure struct {
	Name   string // "Fig15", ...
	Title  string
	XLabel string
	YLabel string
	Panels []Panel
}

// stream returns StreamLen+window edges for ds: the first window-full
// warms the window so measurements cover steady state; queries are
// generated from the warmup prefix so they have embeddings.
func (c Config) stream(ds datagen.Dataset, window int) (warm, measured []graph.Edge) {
	labels := graph.NewLabels()
	gen := datagen.New(ds, labels, datagen.Config{Vertices: c.Vertices, Seed: c.Seed + int64(ds)})
	all := gen.Take(window + c.StreamLen)
	return all[:window], all
}

// averageRuns runs every query in the set and averages throughput and
// space (the paper reports per-setting averages over the generated
// queries, Section VII-C). Truncated cells are announced on stderr so a
// bounded measurement never silently passes as a full one.
func (c Config) averageRuns(m Method, qs []GeneratedQuery, edges []graph.Edge, window graph.Timestamp) (tput float64, space float64, matches float64) {
	if len(qs) == 0 {
		return 0, 0, 0
	}
	for qi, gq := range qs {
		r := RunBudget(NewMatcher(m, gq.Query), edges, window, c.MaxRunTime)
		if r.Truncated {
			fmt.Fprintf(os.Stderr, "note: %s query %d (|E|=%d, window %d) truncated at %v\n",
				m, qi, gq.Query.NumEdges(), window, c.MaxRunTime)
		}
		tput += r.Throughput
		space += float64(r.AvgSpace)
		matches += float64(r.Matches)
	}
	n := float64(len(qs))
	return tput / n, space / n, matches / n
}

// Fig15and17 — throughput (Fig. 15) and space (Fig. 17) over window
// size, per dataset, all methods. One sweep produces both figures: the
// paper reports both metrics from the same runs.
func Fig15and17(c Config) (tput, space Figure) {
	return c.sweepWindows()
}

func (c Config) sweepWindows() (tputFig, spaceFig Figure) {
	tputFig = Figure{Name: "Fig15", Title: "Throughput over Different Window Size",
		XLabel: "Window Size", YLabel: "Throughput(edge/sec)"}
	spaceFig = Figure{Name: "Fig17", Title: "Space over Different Window Size",
		XLabel: "Window Size", YLabel: "Space(KB)"}
	for _, ds := range c.Datasets {
		tp := Panel{Name: ds.String()}
		sp := Panel{Name: ds.String()}
		tSeries := make([]Series, len(Methods()))
		sSeries := make([]Series, len(Methods()))
		for i, m := range Methods() {
			tSeries[i].Label, sSeries[i].Label = m.String(), m.String()
		}
		for _, w := range c.Windows {
			warm, edges := c.stream(ds, w)
			qs := c.QuerySet(ds, c.DefaultQuerySize, warm)
			for i, m := range Methods() {
				tput, space, _ := c.averageRuns(m, qs, edges, graph.Timestamp(w))
				tSeries[i].X = append(tSeries[i].X, float64(w))
				tSeries[i].Y = append(tSeries[i].Y, tput)
				sSeries[i].X = append(sSeries[i].X, float64(w))
				sSeries[i].Y = append(sSeries[i].Y, space/1024)
			}
		}
		tp.Series, sp.Series = tSeries, sSeries
		tputFig.Panels = append(tputFig.Panels, tp)
		spaceFig.Panels = append(spaceFig.Panels, sp)
	}
	return tputFig, spaceFig
}

// Fig16and18 — throughput (Fig. 16) and space (Fig. 18) over query
// size; one sweep produces both figures.
func Fig16and18(c Config) (tput, space Figure) {
	return c.sweepQuerySizes()
}

func (c Config) sweepQuerySizes() (tputFig, spaceFig Figure) {
	tputFig = Figure{Name: "Fig16", Title: "Throughput over Different Query Size",
		XLabel: "Query Size(Number of Edges)", YLabel: "Throughput(edge/sec)"}
	spaceFig = Figure{Name: "Fig18", Title: "Space over Different Query Size",
		XLabel: "Query Size(Number of Edges)", YLabel: "Space(KB)"}
	for _, ds := range c.Datasets {
		tp := Panel{Name: ds.String()}
		sp := Panel{Name: ds.String()}
		tSeries := make([]Series, len(Methods()))
		sSeries := make([]Series, len(Methods()))
		for i, m := range Methods() {
			tSeries[i].Label, sSeries[i].Label = m.String(), m.String()
		}
		warm, edges := c.stream(ds, c.DefaultWindow)
		for _, size := range c.QuerySizes {
			qs := c.QuerySet(ds, size, warm)
			if len(qs) == 0 {
				continue
			}
			for i, m := range Methods() {
				tput, space, _ := c.averageRuns(m, qs, edges, graph.Timestamp(c.DefaultWindow))
				tSeries[i].X = append(tSeries[i].X, float64(size))
				tSeries[i].Y = append(tSeries[i].Y, tput)
				sSeries[i].X = append(sSeries[i].X, float64(size))
				sSeries[i].Y = append(sSeries[i].Y, space/1024)
			}
		}
		tp.Series, sp.Series = tSeries, sSeries
		tputFig.Panels = append(tputFig.Panels, tp)
		spaceFig.Panels = append(spaceFig.Panels, sp)
	}
	return tputFig, spaceFig
}

// Fig19 — concurrency speedup over window size (Timing-N vs All-locks-N).
func Fig19(c Config) Figure {
	fig := Figure{Name: "Fig19", Title: "Speedup over Different Window Size",
		XLabel: "Window Size", YLabel: "SpeedUp"}
	for _, ds := range c.Datasets {
		panel := Panel{Name: ds.String()}
		var series []Series
		for _, scheme := range []core.LockScheme{core.FineGrained, core.AllLocks} {
			for _, n := range c.Threads {
				if n == 1 {
					continue // baseline; speedup is relative to it
				}
				label := fmt.Sprintf("Timing-%d", n)
				if scheme == core.AllLocks {
					label = fmt.Sprintf("All-locks-%d", n)
				}
				s := Series{Label: label}
				for _, w := range c.Windows {
					warm, edges := c.stream(ds, w)
					qs := c.QuerySet(ds, c.DefaultQuerySize, warm)
					if len(qs) == 0 {
						continue
					}
					gq := qs[0]
					base, _ := RunParallel(gq.Query, scheme, 1, edges, graph.Timestamp(w))
					par, _ := RunParallel(gq.Query, scheme, n, edges, graph.Timestamp(w))
					s.X = append(s.X, float64(w))
					s.Y = append(s.Y, base.Seconds()/par.Seconds())
				}
				series = append(series, s)
			}
		}
		panel.Series = series
		fig.Panels = append(fig.Panels, panel)
	}
	return fig
}

// Fig20 — concurrency speedup over query size.
func Fig20(c Config) Figure {
	fig := Figure{Name: "Fig20", Title: "Speedup over Different Query Size",
		XLabel: "Query Size(Number of Edges)", YLabel: "SpeedUp"}
	for _, ds := range c.Datasets {
		panel := Panel{Name: ds.String()}
		var series []Series
		warm, edges := c.stream(ds, c.DefaultWindow)
		for _, scheme := range []core.LockScheme{core.FineGrained, core.AllLocks} {
			for _, n := range c.Threads {
				if n == 1 {
					continue
				}
				label := fmt.Sprintf("Timing-%d", n)
				if scheme == core.AllLocks {
					label = fmt.Sprintf("All-locks-%d", n)
				}
				s := Series{Label: label}
				for _, size := range c.QuerySizes {
					qs := c.QuerySet(ds, size, warm)
					if len(qs) == 0 {
						continue
					}
					gq := qs[0]
					base, _ := RunParallel(gq.Query, scheme, 1, edges, graph.Timestamp(c.DefaultWindow))
					par, _ := RunParallel(gq.Query, scheme, n, edges, graph.Timestamp(c.DefaultWindow))
					s.X = append(s.X, float64(size))
					s.Y = append(s.Y, base.Seconds()/par.Seconds())
				}
				series = append(series, s)
			}
		}
		panel.Series = series
		fig.Panels = append(fig.Panels, panel)
	}
	return fig
}

// Fig21 — decomposition/join-order ablation: Timing vs Timing-RJ vs
// Timing-RD vs Timing-RDJ, per dataset, at the default window.
func Fig21(c Config) (timeFig, spaceFig Figure) {
	timeFig = Figure{Name: "Fig21a", Title: "Evaluating Optimizations: Time Efficiency",
		XLabel: "Dataset", YLabel: "Throughput(edges/sec)"}
	spaceFig = Figure{Name: "Fig21b", Title: "Evaluating Optimizations: Space Efficiency",
		XLabel: "Dataset", YLabel: "Space(KB)"}
	variants := []string{"Timing", "Timing-RJ", "Timing-RD", "Timing-RDJ"}
	tp := Panel{Name: "all"}
	sp := Panel{Name: "all"}
	tSeries := make([]Series, len(variants))
	sSeries := make([]Series, len(variants))
	for i, v := range variants {
		tSeries[i].Label, sSeries[i].Label = v, v
	}
	for di, ds := range c.Datasets {
		warm, edges := c.stream(ds, c.DefaultWindow)
		qs := c.QuerySet(ds, c.DefaultQuerySize, warm)
		for vi, v := range variants {
			var tput, space float64
			n := 0
			for qi, gq := range qs {
				rng := rand.New(rand.NewSource(c.Seed + int64(qi)))
				var dec *query.Decomposition
				switch v {
				case "Timing":
					dec = query.Decompose(gq.Query)
				case "Timing-RJ":
					dec = query.DecomposeOrdered(gq.Query, rng)
				case "Timing-RD":
					dec = query.DecomposeRandom(gq.Query, rng, nil)
				case "Timing-RDJ":
					dec = query.DecomposeRandom(gq.Query, rng, rng)
				}
				r := RunBudget(NewTimingMatcher(gq.Query, dec), edges, graph.Timestamp(c.DefaultWindow), c.MaxRunTime)
				tput += r.Throughput
				space += float64(r.AvgSpace)
				n++
			}
			if n == 0 {
				continue
			}
			tSeries[vi].X = append(tSeries[vi].X, float64(di))
			tSeries[vi].Y = append(tSeries[vi].Y, tput/float64(n))
			sSeries[vi].X = append(sSeries[vi].X, float64(di))
			sSeries[vi].Y = append(sSeries[vi].Y, space/float64(n)/1024)
		}
	}
	tp.Series, sp.Series = tSeries, sSeries
	timeFig.Panels = []Panel{tp}
	spaceFig.Panels = []Panel{sp}
	return timeFig, spaceFig
}

// Fig23 and Fig24 — throughput and space over decomposition size k, all
// methods, query size fixed (paper: 12), window fixed.
func Fig23and24(c Config) (tputFig, spaceFig Figure) {
	tputFig = Figure{Name: "Fig23", Title: "Throughput over Different k",
		XLabel: "Decomposition size k", YLabel: "Throughput(edges/sec)"}
	spaceFig = Figure{Name: "Fig24", Title: "Space over Different k",
		XLabel: "Decomposition size k", YLabel: "Space(KB)"}
	for _, ds := range c.Datasets {
		tp := Panel{Name: ds.String()}
		sp := Panel{Name: ds.String()}
		tSeries := make([]Series, len(Methods()))
		sSeries := make([]Series, len(Methods()))
		for i, m := range Methods() {
			tSeries[i].Label, sSeries[i].Label = m.String(), m.String()
		}
		warm, edges := c.stream(ds, c.DefaultWindow)
		for _, k := range c.KValues {
			if k > c.KQuerySize {
				continue
			}
			q, _, err := querygen.GenerateWithK(warm, c.KQuerySize, k, c.Seed+int64(k*97))
			if err != nil {
				continue
			}
			qs := []GeneratedQuery{{Query: q}}
			for i, m := range Methods() {
				tput, space, _ := c.averageRuns(m, qs, edges, graph.Timestamp(c.DefaultWindow))
				tSeries[i].X = append(tSeries[i].X, float64(k))
				tSeries[i].Y = append(tSeries[i].Y, tput)
				sSeries[i].X = append(sSeries[i].X, float64(k))
				sSeries[i].Y = append(sSeries[i].Y, space/1024)
			}
		}
		tp.Series, sp.Series = tSeries, sSeries
		tputFig.Panels = append(tputFig.Panels, tp)
		spaceFig.Panels = append(spaceFig.Panels, sp)
	}
	return tputFig, spaceFig
}

// Fig25 — selectivity of the generated query sets: average answer count
// over window size (a) and query size (b).
func Fig25(c Config) Figure {
	fig := Figure{Name: "Fig25", Title: "Selectivity",
		XLabel: "Window Size / Query Size", YLabel: "Number of Answers"}
	byWindow := Panel{Name: "VaryingWindow"}
	for _, ds := range c.Datasets {
		s := Series{Label: ds.String()}
		for _, w := range c.Windows {
			warm, edges := c.stream(ds, w)
			qs := c.QuerySet(ds, c.DefaultQuerySize, warm)
			if len(qs) == 0 {
				continue
			}
			_, _, matches := c.averageRuns(Timing, qs, edges, graph.Timestamp(w))
			s.X = append(s.X, float64(w))
			s.Y = append(s.Y, matches)
		}
		byWindow.Series = append(byWindow.Series, s)
	}
	bySize := Panel{Name: "VaryingQuerySize"}
	for _, ds := range c.Datasets {
		s := Series{Label: ds.String()}
		warm, edges := c.stream(ds, c.DefaultWindow)
		for _, size := range c.QuerySizes {
			qs := c.QuerySet(ds, size, warm)
			if len(qs) == 0 {
				continue
			}
			_, _, matches := c.averageRuns(Timing, qs, edges, graph.Timestamp(c.DefaultWindow))
			s.X = append(s.X, float64(size))
			s.Y = append(s.Y, matches)
		}
		bySize.Series = append(bySize.Series, s)
	}
	fig.Panels = []Panel{byWindow, bySize}
	return fig
}

// CostModelTable evaluates Theorem 7's expected join operations for a
// query across decomposition sizes (the cost model that drives Algorithm
// 6's preference for small k).
func CostModelTable(q *query.Query, ks []int) Series {
	s := Series{Label: "E[join ops]"}
	for _, k := range ks {
		s.X = append(s.X, float64(k))
		s.Y = append(s.Y, query.ExpectedJoinOps(q, k))
	}
	return s
}
