// Package bench is the experiment harness: it regenerates every figure
// of the paper's evaluation (Section VII) as printable series — workload
// generation, query generation, method drivers, throughput/space/speedup
// measurement and table rendering. EXPERIMENTS.md records the measured
// shapes against the paper's.
package bench

import (
	"fmt"

	"timingsubg/internal/baseline/incmat"
	"timingsubg/internal/baseline/sjtree"
	"timingsubg/internal/core"
	"timingsubg/internal/graph"
	"timingsubg/internal/iso"
	"timingsubg/internal/query"
)

// Method identifies one of the compared systems (Section VII-C).
type Method int

// The six compared methods, in the paper's legend order.
const (
	Timing Method = iota
	TimingIND
	SJTree
	IncBoostISO
	IncTurboISO
	IncQuickSI
)

// Methods returns all compared methods in legend order.
func Methods() []Method {
	return []Method{Timing, TimingIND, SJTree, IncBoostISO, IncTurboISO, IncQuickSI}
}

// String names the method as in the paper's figures.
func (m Method) String() string {
	switch m {
	case Timing:
		return "Timing"
	case TimingIND:
		return "Timing-IND"
	case SJTree:
		return "SJ-tree"
	case IncBoostISO:
		return "BoostISO"
	case IncTurboISO:
		return "TurboISO"
	case IncQuickSI:
		return "QuickSI"
	}
	return fmt.Sprintf("method#%d", int(m))
}

// Matcher is the uniform driver interface over all compared systems.
type Matcher interface {
	// Process handles one window slide (expired edges leave, d enters).
	Process(d graph.Edge, expired []graph.Edge)
	// MatchCount returns the number of matches reported so far.
	MatchCount() int64
	// SpaceBytes estimates current resident bytes of maintained state.
	SpaceBytes() int64
}

// engineMatcher adapts core.Engine.
type engineMatcher struct{ e *core.Engine }

func (m engineMatcher) Process(d graph.Edge, expired []graph.Edge) { m.e.Process(d, expired) }
func (m engineMatcher) MatchCount() int64                          { return m.e.Stats().Matches.Load() }
func (m engineMatcher) SpaceBytes() int64                          { return m.e.SpaceBytes() }

// NewMatcher builds the driver for a method and query.
func NewMatcher(m Method, q *query.Query) Matcher {
	switch m {
	case Timing:
		return engineMatcher{core.New(q, core.Config{Storage: core.MSTree})}
	case TimingIND:
		return engineMatcher{core.New(q, core.Config{Storage: core.Independent})}
	case SJTree:
		return sjtree.New(q, nil)
	case IncQuickSI:
		return incmat.New(q, iso.QuickSI, nil)
	case IncTurboISO:
		return incmat.New(q, iso.TurboISO, nil)
	case IncBoostISO:
		return incmat.New(q, iso.BoostISO, nil)
	}
	panic(fmt.Sprintf("bench: unknown method %d", int(m)))
}

// NewTimingMatcher builds a Timing driver with an explicit decomposition,
// used by the Fig. 21 optimization ablation.
func NewTimingMatcher(q *query.Query, dec *query.Decomposition) Matcher {
	return engineMatcher{core.New(q, core.Config{Storage: core.MSTree, Decomposition: dec})}
}
