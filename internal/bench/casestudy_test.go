package bench

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"timingsubg/internal/datagen"
	"timingsubg/internal/graph"
)

func TestCaseStudyDetectsPlant(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		r := CaseStudy(seed, 400)
		if !r.Detected {
			t.Errorf("seed %d: planted incident not detected", seed)
		}
		if r.ExfilAt <= r.CommandAt {
			t.Errorf("seed %d: exfiltration must follow the command", seed)
		}
		if r.Discarded == 0 {
			t.Errorf("seed %d: background chatter should be pruned as discardable", seed)
		}
	}
}

func TestRenderCaseStudy(t *testing.T) {
	var buf bytes.Buffer
	RenderCaseStudy(&buf, CaseStudy(7, 300))
	out := buf.String()
	if !strings.Contains(out, "DETECTED") || !strings.Contains(out, "Fig22") {
		t.Errorf("unexpected case-study rendering:\n%s", out)
	}
	buf.Reset()
	RenderCaseStudy(&buf, CaseStudyResult{})
	if !strings.Contains(buf.String(), "NOT DETECTED") {
		t.Error("undetected case must render a warning")
	}
}

func TestRenderTable1(t *testing.T) {
	var buf bytes.Buffer
	RenderTable1(&buf)
	for _, want := range []string{"Timing", "SJ-tree", "IncMat", "Table I"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("Table I missing %q", want)
		}
	}
}

func TestRunBudgetTruncates(t *testing.T) {
	c := tinyConfig()
	ds := datagen.WikiTalk
	warm, edges := c.stream(ds, c.DefaultWindow)
	qs := c.QuerySet(ds, 4, warm)
	if len(qs) == 0 {
		t.Skip("no query")
	}
	// slowMatcher stalls per edge so even a tiny budget truncates.
	r := RunBudget(slowMatcher{}, edges, 300, 20*time.Millisecond)
	if !r.Truncated {
		t.Error("budget must truncate a slow run")
	}
	if r.Throughput <= 0 {
		t.Error("truncated runs still report throughput over the prefix")
	}
	// Unlimited budget never truncates.
	full := Run(NewMatcher(Timing, qs[0].Query), edges, 300)
	if full.Truncated {
		t.Error("Run must not truncate")
	}
}

// slowMatcher is a Matcher whose per-edge cost dwarfs any test budget.
type slowMatcher struct{}

func (slowMatcher) Process(graph.Edge, []graph.Edge) { time.Sleep(200 * time.Microsecond) }
func (slowMatcher) MatchCount() int64                { return 0 }
func (slowMatcher) SpaceBytes() int64                { return 0 }
