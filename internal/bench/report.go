package bench

import (
	"fmt"
	"io"
	"strings"
)

// Render prints a figure as aligned tables, one per panel: rows are X
// values, columns are series — the same rows/series the paper plots.
func Render(w io.Writer, fig Figure) {
	fmt.Fprintf(w, "== %s: %s ==\n", fig.Name, fig.Title)
	for _, p := range fig.Panels {
		fmt.Fprintf(w, "-- %s --\n", p.Name)
		renderPanel(w, fig.XLabel, fig.YLabel, p)
		fmt.Fprintln(w)
	}
}

func renderPanel(w io.Writer, xlabel, ylabel string, p Panel) {
	// Collect the x-axis as the union of series x values, in first-seen
	// order.
	var xs []float64
	seen := map[float64]bool{}
	for _, s := range p.Series {
		for _, x := range s.X {
			if !seen[x] {
				seen[x] = true
				xs = append(xs, x)
			}
		}
	}
	header := []string{xlabel}
	for _, s := range p.Series {
		header = append(header, s.Label)
	}
	rows := [][]string{header}
	for _, x := range xs {
		row := []string{trimFloat(x)}
		for _, s := range p.Series {
			v, ok := lookup(s, x)
			if !ok {
				row = append(row, "-")
			} else {
				row = append(row, fmtVal(v))
			}
		}
		rows = append(rows, row)
	}
	writeAligned(w, rows)
	fmt.Fprintf(w, "(y: %s)\n", ylabel)
}

func lookup(s Series, x float64) (float64, bool) {
	for i, sx := range s.X {
		if sx == x {
			return s.Y[i], true
		}
	}
	return 0, false
}

func trimFloat(x float64) string {
	if x == float64(int64(x)) {
		return fmt.Sprintf("%d", int64(x))
	}
	return fmt.Sprintf("%.2f", x)
}

func fmtVal(v float64) string {
	switch {
	case v == 0:
		return "0"
	case v >= 100000:
		return fmt.Sprintf("%.3g", v)
	case v >= 100:
		return fmt.Sprintf("%.0f", v)
	default:
		return fmt.Sprintf("%.2f", v)
	}
}

func writeAligned(w io.Writer, rows [][]string) {
	if len(rows) == 0 {
		return
	}
	widths := make([]int, len(rows[0]))
	for _, row := range rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	for _, row := range rows {
		var b strings.Builder
		for i, cell := range row {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			b.WriteString(strings.Repeat(" ", widths[i]-len(cell)))
		}
		fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
	}
}
