package monitor

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
)

func TestRegisterAndSnapshot(t *testing.T) {
	r := NewRegistry()
	var n atomic.Int64
	if err := r.Register("edges", func() any { return n.Load() }); err != nil {
		t.Fatal(err)
	}
	if err := r.Register("name", func() any { return "q1" }); err != nil {
		t.Fatal(err)
	}
	n.Store(7)
	snap := r.Snapshot()
	if snap["edges"] != int64(7) || snap["name"] != "q1" {
		t.Fatalf("snapshot = %v", snap)
	}
	n.Store(9)
	if v, ok := r.Sample("edges"); !ok || v != int64(9) {
		t.Fatalf("sample = %v %v (values must be live)", v, ok)
	}
}

func TestRegisterErrors(t *testing.T) {
	r := NewRegistry()
	if err := r.Register("", func() any { return 1 }); err == nil {
		t.Fatal("empty name accepted")
	}
	if err := r.Register("x", nil); err == nil {
		t.Fatal("nil sampler accepted")
	}
	if err := r.Register("x", func() any { return 1 }); err != nil {
		t.Fatal(err)
	}
	if err := r.Register("x", func() any { return 2 }); err == nil {
		t.Fatal("duplicate accepted")
	}
}

func TestNamesSorted(t *testing.T) {
	r := NewRegistry()
	for _, n := range []string{"zeta", "alpha", "mid"} {
		r.MustRegister(n, func() any { return 0 })
	}
	got := r.Names()
	want := []string{"alpha", "mid", "zeta"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Names = %v", got)
	}
}

func TestHandlerAllMetrics(t *testing.T) {
	r := NewRegistry()
	r.MustRegister("matches", func() any { return 42 })
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()

	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type %q", ct)
	}
	var got map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if got["matches"] != float64(42) {
		t.Fatalf("body = %v", got)
	}
}

func TestHandlerSingleMetric(t *testing.T) {
	r := NewRegistry()
	r.MustRegister("a", func() any { return 1 })
	r.MustRegister("b", func() any { return 2 })
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/?metric=b")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var got map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got["b"] != float64(2) {
		t.Fatalf("body = %v", got)
	}
}

func TestHandlerUnknownMetric404(t *testing.T) {
	r := NewRegistry()
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/?metric=nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status %d, want 404", resp.StatusCode)
	}
}

func TestHandlerMethodNotAllowed(t *testing.T) {
	r := NewRegistry()
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()
	resp, err := http.Post(srv.URL, "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("status %d, want 405", resp.StatusCode)
	}
}

// TestConcurrentRegisterAndSample exercises the registry under the race
// detector.
func TestConcurrentRegisterAndSample(t *testing.T) {
	r := NewRegistry()
	r.MustRegister("base", func() any { return 0 })
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(2)
		i := i
		go func() {
			defer wg.Done()
			r.Register(string(rune('a'+i)), func() any { return i })
		}()
		go func() {
			defer wg.Done()
			r.Snapshot()
			r.Sample("base")
			r.Names()
		}()
	}
	wg.Wait()
}
