// Package monitor exposes live engine counters over HTTP as JSON — the
// operational companion to a continuous query deployment. A Registry
// maps metric names to sampling functions; its Handler serves the whole
// registry (or a single metric) per GET, sampling at request time so
// values are always current.
//
// The package is intentionally tiny and dependency-free (net/http +
// encoding/json): it is the integration point for scraping systems, not
// a metrics framework.
package monitor

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"sync"
)

// Registry is a named set of metric sampling functions. The zero value
// is not usable; call NewRegistry. Registry is safe for concurrent use.
type Registry struct {
	mu      sync.RWMutex
	entries map[string]func() any
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{entries: make(map[string]func() any)}
}

// Register adds a metric. fn is called at sampling time and must be
// safe to call concurrently with the monitored system (the engine
// counters are atomics, so the standard adapters are). Registering a
// duplicate name returns an error.
func (r *Registry) Register(name string, fn func() any) error {
	if name == "" || fn == nil {
		return fmt.Errorf("monitor: empty metric name or nil sampler")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.entries[name]; dup {
		return fmt.Errorf("monitor: duplicate metric %q", name)
	}
	r.entries[name] = fn
	return nil
}

// MustRegister is Register that panics on error, for static wiring.
func (r *Registry) MustRegister(name string, fn func() any) {
	if err := r.Register(name, fn); err != nil {
		panic(err)
	}
}

// Names returns the registered metric names, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.entries))
	for n := range r.entries {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Snapshot samples every metric.
func (r *Registry) Snapshot() map[string]any {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make(map[string]any, len(r.entries))
	for n, fn := range r.entries {
		out[n] = fn()
	}
	return out
}

// Sample samples one metric.
func (r *Registry) Sample(name string) (any, bool) {
	r.mu.RLock()
	fn, ok := r.entries[name]
	r.mu.RUnlock()
	if !ok {
		return nil, false
	}
	return fn(), true
}

// Handler serves the registry as JSON:
//
//	GET /            → {"metric": value, ...} (all metrics)
//	GET /?metric=m   → {"m": value}
//
// Unknown metrics yield 404; non-GET methods 405.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		var payload map[string]any
		if m := req.URL.Query().Get("metric"); m != "" {
			v, ok := r.Sample(m)
			if !ok {
				http.Error(w, fmt.Sprintf("unknown metric %q", m), http.StatusNotFound)
				return
			}
			payload = map[string]any{m: v}
		} else {
			payload = r.Snapshot()
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(payload); err != nil {
			// Too late for an HTTP error; the connection is the problem.
			return
		}
	})
}
