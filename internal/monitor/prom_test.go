package monitor

import (
	"strconv"
	"strings"
	"testing"
	"time"

	"timingsubg/internal/stats"
)

// TestPromWriterFormat locks the text exposition shape: one TYPE line
// per family, sorted labels, monotone cumulative buckets, and
// _count == +Inf bucket.
func TestPromWriterFormat(t *testing.T) {
	var h stats.Histogram
	for _, d := range []time.Duration{
		5 * time.Microsecond, 80 * time.Microsecond, 3 * time.Millisecond,
		2 * time.Second, 10 * time.Second, // last lands in the clamp bucket
	} {
		h.Observe(d)
	}
	w := NewPromWriter()
	w.Counter("reqs_total", nil, 42)
	w.Gauge("queue", map[string]string{"shard": "0", "host": "a"}, 3)
	w.Histogram("lat_seconds", map[string]string{"stage": "join"}, h.Snapshot())
	w.Histogram("lat_seconds", map[string]string{"stage": "expiry"}, stats.Snapshot{})
	out := string(w.Bytes())

	if got := strings.Count(out, "# TYPE lat_seconds histogram"); got != 1 {
		t.Fatalf("want exactly one TYPE line for the lat_seconds family, got %d\n%s", got, out)
	}
	if !strings.Contains(out, "# TYPE reqs_total counter") || !strings.Contains(out, "reqs_total 42\n") {
		t.Fatalf("counter exposition wrong:\n%s", out)
	}
	// Label keys render sorted regardless of map order.
	if !strings.Contains(out, `queue{host="a",shard="0"} 3`) {
		t.Fatalf("gauge labels not sorted:\n%s", out)
	}

	checkHistogram(t, out, "lat_seconds", `stage="join"`, 5)
	checkHistogram(t, out, "lat_seconds", `stage="expiry"`, 0)
}

// checkHistogram verifies bucket monotonicity, the +Inf bucket, and
// _count/_sum presence for one labelled series.
func checkHistogram(t *testing.T, out, name, label string, wantCount uint64) {
	t.Helper()
	var last uint64
	var sawInf, sawCount, sawSum bool
	buckets := 0
	for _, line := range strings.Split(out, "\n") {
		switch {
		case strings.HasPrefix(line, name+"_bucket{"+label+","):
			buckets++
			v := parseValue(t, line)
			if v < last {
				t.Fatalf("bucket counts must be non-decreasing: %q after %d", line, last)
			}
			last = v
			if strings.Contains(line, `le="+Inf"`) {
				sawInf = true
				if v != wantCount {
					t.Fatalf("+Inf bucket = %d, want %d: %q", v, wantCount, line)
				}
			}
		case strings.HasPrefix(line, name+"_count{"+label+"}"):
			sawCount = true
			if v := parseValue(t, line); v != wantCount {
				t.Fatalf("_count = %d, want %d", v, wantCount)
			}
		case strings.HasPrefix(line, name+"_sum{"+label+"}"):
			sawSum = true
		}
	}
	if !sawInf || !sawCount || !sawSum {
		t.Fatalf("series %s{%s}: inf=%v count=%v sum=%v\n%s", name, label, sawInf, sawCount, sawSum, out)
	}
	if buckets < 2 {
		t.Fatalf("series %s{%s}: only %d bucket lines", name, label, buckets)
	}
}

func parseValue(t *testing.T, line string) uint64 {
	t.Helper()
	i := strings.LastIndexByte(line, ' ')
	v, err := strconv.ParseFloat(line[i+1:], 64)
	if err != nil {
		t.Fatalf("bad sample value in %q: %v", line, err)
	}
	return uint64(v)
}

// TestPromWriterSanitizes maps arbitrary metric and label names onto
// the legal charset and escapes label values.
func TestPromWriterSanitizes(t *testing.T) {
	w := NewPromWriter()
	w.Counter("bad-name.total", map[string]string{"query": "a\"b\nc\\d"}, 1)
	out := string(w.Bytes())
	if !strings.Contains(out, "# TYPE bad_name_total counter") {
		t.Fatalf("metric name not sanitized:\n%s", out)
	}
	if !strings.Contains(out, `bad_name_total{query="a\"b\nc\\d"} 1`) {
		t.Fatalf("label value not escaped:\n%s", out)
	}
}
