package monitor

import (
	"math"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"

	"timingsubg/internal/stats"
)

// nameCharset is the Prometheus metric/label name grammar sanitizeName
// must land every input in.
var nameCharset = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)

// FuzzPromWriter drives arbitrary metric names, label pairs and values
// through the text-exposition writer and checks the output grammar:
// sanitizeName is idempotent and lands in the name charset, every line
// is a # TYPE line or a sample line, and the histogram series keeps
// its cumulative-bucket arithmetic (non-decreasing buckets, _count
// equal to the +Inf bucket).
func FuzzPromWriter(f *testing.F) {
	f.Add("requests_total", "query", "q1", 1.5, uint16(3))
	f.Add("", "", "", 0.0, uint16(0))
	f.Add("0weird name!", "lab el", "va\"lue\nnewline", -2.25, uint16(9))
	f.Add("métrique", "l\xffbl", "\\", 1e300, uint16(255))
	f.Fuzz(func(t *testing.T, name, lk, lv string, v float64, n uint16) {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			v = 0 // formatFloat targets finite exposition values
		}

		s := sanitizeName(name)
		if got := sanitizeName(s); got != s {
			t.Fatalf("sanitizeName not idempotent: %q -> %q -> %q", name, s, got)
		}
		if name != "" && !nameCharset.MatchString(s) {
			t.Fatalf("sanitizeName(%q) = %q, outside the name charset", name, s)
		}
		if name == "" && s != "" {
			t.Fatalf("sanitizeName(%q) = %q, want empty", name, s)
		}

		var h stats.AtomicHistogram
		for i := 0; i < int(n)%64; i++ {
			h.Observe(time.Duration(i+1) * time.Microsecond << (i % 16))
		}
		hn := sanitizeName("lat_" + name)

		w := NewPromWriter()
		labels := map[string]string{lk: lv}
		w.Counter("c_"+name, labels, v)
		w.Gauge("g_"+name, nil, v)
		w.Histogram("lat_"+name, labels, h.Snapshot())
		out := string(w.Bytes())

		if !strings.HasSuffix(out, "\n") {
			t.Fatalf("exposition does not end in newline: %q", out)
		}
		var bucketVals []float64
		var countVal float64
		for _, line := range strings.Split(strings.TrimSuffix(out, "\n"), "\n") {
			fields := strings.Fields(line)
			if strings.HasPrefix(line, "# TYPE ") {
				if len(fields) != 4 || !nameCharset.MatchString(fields[2]) {
					t.Fatalf("malformed TYPE line: %q", line)
				}
				continue
			}
			// Sample line: name-with-optional-labels, space, value. The
			// value is the text after the final space (label values are
			// %q-quoted, so they never contain a raw newline, but may
			// contain spaces — only the last field is the value).
			if len(fields) < 2 {
				t.Fatalf("malformed sample line: %q", line)
			}
			val, err := strconv.ParseFloat(fields[len(fields)-1], 64)
			if err != nil {
				t.Fatalf("unparseable sample value in %q: %v", line, err)
			}
			metric := line[:strings.IndexAny(line, "{ ")]
			if !nameCharset.MatchString(metric) {
				t.Fatalf("sample metric name %q outside the charset in %q", metric, line)
			}
			switch {
			case strings.HasPrefix(line, hn+"_bucket"):
				bucketVals = append(bucketVals, val)
			case metric == hn+"_count":
				countVal = val
			}
		}
		if len(bucketVals) == 0 {
			t.Fatalf("histogram emitted no _bucket series:\n%s", out)
		}
		for i := 1; i < len(bucketVals); i++ {
			if bucketVals[i] < bucketVals[i-1] {
				t.Fatalf("cumulative buckets decreased: %v", bucketVals)
			}
		}
		if last := bucketVals[len(bucketVals)-1]; last != countVal {
			t.Fatalf("+Inf bucket %v != _count %v", last, countVal)
		}
		if countVal != float64(h.Count()) {
			t.Fatalf("_count %v != histogram count %d", countVal, h.Count())
		}
	})
}
