package monitor

import (
	"fmt"
	"sort"
	"strings"

	"timingsubg/internal/stats"
)

// PromWriter renders metrics in the Prometheus text exposition format
// (version 0.0.4) — the scrape-side companion to the JSON Registry.
// Families appear in first-use order with one # TYPE line each;
// histograms are rendered from stats.Snapshot bucket counts as
// seconds-valued cumulative buckets, so `_count` always equals the
// +Inf bucket and `_sum`/`_count` stay mutually consistent.
//
// A PromWriter is single-use and not safe for concurrent use: build
// one per scrape, emit, and discard.
type PromWriter struct {
	b     strings.Builder
	typed map[string]bool
}

// NewPromWriter returns an empty writer.
func NewPromWriter() *PromWriter {
	return &PromWriter{typed: make(map[string]bool)}
}

// ContentType is the HTTP Content-Type of the text exposition format.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// Counter emits one counter sample. name is sanitized; labels may be
// nil.
func (w *PromWriter) Counter(name string, labels map[string]string, v float64) {
	name = sanitizeName(name)
	w.typeLine(name, "counter")
	w.line(name, labels, "", "", v)
}

// Gauge emits one gauge sample.
func (w *PromWriter) Gauge(name string, labels map[string]string, v float64) {
	name = sanitizeName(name)
	w.typeLine(name, "gauge")
	w.line(name, labels, "", "", v)
}

// Histogram emits one histogram series from a latency snapshot:
// `name_bucket{...,le="..."}` on the snapshot's fixed upper-bound
// ladder plus the +Inf bucket, then `name_sum` and `name_count`.
// Durations are exposed in seconds, per Prometheus convention.
func (w *PromWriter) Histogram(name string, labels map[string]string, s stats.Snapshot) {
	name = sanitizeName(name)
	w.typeLine(name, "histogram")
	for _, b := range s.Buckets() {
		le := "+Inf"
		if b.Le > 0 {
			le = formatFloat(b.Le.Seconds())
		}
		w.line(name+"_bucket", labels, "le", le, float64(b.Count))
	}
	w.line(name+"_sum", labels, "", "", s.Sum.Seconds())
	w.line(name+"_count", labels, "", "", float64(s.Count))
}

// Bytes returns the accumulated exposition.
func (w *PromWriter) Bytes() []byte { return []byte(w.b.String()) }

func (w *PromWriter) typeLine(name, typ string) {
	if !w.typed[name] {
		w.typed[name] = true
		fmt.Fprintf(&w.b, "# TYPE %s %s\n", name, typ)
	}
}

// line writes one sample line, appending an extra label (the histogram
// le) when extraK is non-empty. Label keys render sorted so output is
// deterministic; %q quoting covers the \\ \" \n escapes the format
// requires.
func (w *PromWriter) line(name string, labels map[string]string, extraK, extraV string, v float64) {
	w.b.WriteString(name)
	if len(labels) > 0 || extraK != "" {
		w.b.WriteByte('{')
		keys := make([]string, 0, len(labels))
		for k := range labels {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		first := true
		for _, k := range keys {
			if !first {
				w.b.WriteByte(',')
			}
			first = false
			fmt.Fprintf(&w.b, "%s=%q", sanitizeName(k), labels[k])
		}
		if extraK != "" {
			if !first {
				w.b.WriteByte(',')
			}
			fmt.Fprintf(&w.b, "%s=%q", extraK, extraV)
		}
		w.b.WriteByte('}')
	}
	w.b.WriteByte(' ')
	w.b.WriteString(formatFloat(v))
	w.b.WriteByte('\n')
}

// formatFloat renders v the way Prometheus clients do: integral values
// without a decimal point, everything else trimmed of trailing zeros.
func formatFloat(v float64) string {
	if v == float64(int64(v)) {
		return fmt.Sprintf("%d", int64(v))
	}
	return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%.9f", v), "0"), ".")
}

// sanitizeName maps an arbitrary string onto the metric/label name
// charset [a-zA-Z0-9_:]; every other rune becomes '_', and a leading
// digit gets a '_' prefix.
func sanitizeName(s string) string {
	var out []byte
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
			out = append(out, c)
		case c >= '0' && c <= '9':
			if i == 0 {
				out = append(out, '_')
			}
			out = append(out, c)
		default:
			out = append(out, '_')
		}
	}
	return string(out)
}
