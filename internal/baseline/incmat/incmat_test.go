package incmat

import (
	"testing"

	"timingsubg/internal/graph"
	"timingsubg/internal/iso"
	"timingsubg/internal/match"
	"timingsubg/internal/query"
)

func pathQuery(t *testing.T) (*query.Query, []graph.Label) {
	t.Helper()
	labels := graph.NewLabels()
	ls := []graph.Label{labels.Intern("a"), labels.Intern("b"), labels.Intern("c")}
	b := query.NewBuilder()
	va, vb, vc := b.AddVertex(ls[0]), b.AddVertex(ls[1]), b.AddVertex(ls[2])
	e1 := b.AddEdge(va, vb)
	e2 := b.AddEdge(vb, vc)
	b.Before(e1, e2)
	q, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return q, ls
}

func TestIncMatBasicMatch(t *testing.T) {
	q, ls := pathQuery(t)
	var got []string
	m := New(q, iso.QuickSI, func(mm *match.Match) {
		if err := mm.Verify(q); err != nil {
			t.Fatal(err)
		}
		got = append(got, mm.Key())
	})
	m.Insert(graph.Edge{ID: 1, From: 10, To: 20, FromLabel: ls[0], ToLabel: ls[1], Time: 1})
	m.Insert(graph.Edge{ID: 2, From: 20, To: 30, FromLabel: ls[1], ToLabel: ls[2], Time: 2})
	if len(got) != 1 {
		t.Fatalf("want 1 match, got %v", got)
	}
	if m.LiveMatches() != 1 {
		t.Errorf("live matches: want 1, got %d", m.LiveMatches())
	}
}

func TestIncMatTimingPostFilter(t *testing.T) {
	q, ls := pathQuery(t)
	m := New(q, iso.TurboISO, nil)
	// Reversed arrivals violate e1 ≺ e2.
	m.Insert(graph.Edge{ID: 1, From: 20, To: 30, FromLabel: ls[1], ToLabel: ls[2], Time: 1})
	m.Insert(graph.Edge{ID: 2, From: 10, To: 20, FromLabel: ls[0], ToLabel: ls[1], Time: 2})
	if m.MatchCount() != 0 {
		t.Error("posterior timing filter must reject the match")
	}
}

func TestIncMatExpiry(t *testing.T) {
	q, ls := pathQuery(t)
	m := New(q, iso.BoostISO, nil)
	e1 := graph.Edge{ID: 1, From: 10, To: 20, FromLabel: ls[0], ToLabel: ls[1], Time: 1}
	e2 := graph.Edge{ID: 2, From: 20, To: 30, FromLabel: ls[1], ToLabel: ls[2], Time: 2}
	m.Insert(e1)
	m.Insert(e2)
	if m.LiveMatches() != 1 {
		t.Fatal("expected one live match")
	}
	m.Delete(e1)
	if m.LiveMatches() != 0 {
		t.Error("expiring a member edge must drop the match")
	}
	// The snapshot has also shed the edge: a fresh e2' cannot re-match.
	m.Insert(graph.Edge{ID: 3, From: 20, To: 31, FromLabel: ls[1], ToLabel: ls[2], Time: 3})
	if m.LiveMatches() != 0 {
		t.Error("no match should exist without the a→b edge")
	}
}

func TestIncMatNoDuplicateReports(t *testing.T) {
	q, ls := pathQuery(t)
	seen := map[string]int{}
	m := New(q, iso.QuickSI, func(mm *match.Match) { seen[mm.Key()]++ })
	m.Insert(graph.Edge{ID: 1, From: 10, To: 20, FromLabel: ls[0], ToLabel: ls[1], Time: 1})
	m.Insert(graph.Edge{ID: 2, From: 20, To: 30, FromLabel: ls[1], ToLabel: ls[2], Time: 2})
	// An unrelated edge near the match must not re-report it.
	m.Insert(graph.Edge{ID: 3, From: 20, To: 31, FromLabel: ls[1], ToLabel: ls[2], Time: 3})
	for k, n := range seen {
		if n != 1 {
			t.Errorf("match %s reported %d times", k, n)
		}
	}
}

func TestIncMatSpaceIncludesSnapshot(t *testing.T) {
	q, ls := pathQuery(t)
	m := New(q, iso.QuickSI, nil)
	// A label-matching edge costs adjacency space even when no match
	// forms — the overhead Figs. 17-18 highlight for re-search baselines.
	m.Insert(graph.Edge{ID: 1, From: 1, To: 2, FromLabel: ls[0], ToLabel: ls[1], Time: 1})
	if m.SpaceBytes() <= 0 {
		t.Error("IncMat must pay for window adjacency even without matches")
	}
	// Edges matching no query edge still cost adjacency space: the
	// re-search approach keeps the whole window graph (only the search
	// is skipped for them).
	before := m.SpaceBytes()
	m.Insert(graph.Edge{ID: 2, From: 3, To: 4, FromLabel: ls[2], ToLabel: ls[2], Time: 2})
	if m.SpaceBytes() <= before {
		t.Error("the full window adjacency must be maintained")
	}
}
