// Package incmat reimplements the IncMat baseline (Fan et al., TODS
// 2013) as evaluated in the paper (Section VII-C): on every window
// update it runs a static subgraph isomorphism algorithm over the
// affected area — the subgraph induced by vertices within query-diameter
// hops of the updated edge's endpoints — restricted to matches that
// contain the new edge. It must maintain the full window adjacency to do
// so, which is the space overhead Figs. 17-18 measure. Timing-order
// constraints are checked posteriorly.
package incmat

import (
	"sync/atomic"

	"timingsubg/internal/graph"
	"timingsubg/internal/iso"
	"timingsubg/internal/match"
	"timingsubg/internal/query"
)

// Matcher is a continuous IncMat matcher parameterized by the static
// algorithm (QuickSI, TurboISO or BoostISO).
type Matcher struct {
	q    *query.Query
	alg  iso.Algorithm
	snap *graph.Snapshot
	// results maps match keys to live matches so expiry can remove the
	// matches containing an expired edge.
	results map[string]*match.Match
	// byEdge indexes result keys by member data edge for O(matches)
	// expiry.
	byEdge map[graph.EdgeID][]string

	onMatch func(*match.Match)
	matches atomic.Int64
}

// New builds an IncMat matcher. onMatch may be nil.
func New(q *query.Query, alg iso.Algorithm, onMatch func(*match.Match)) *Matcher {
	return &Matcher{
		q:       q,
		alg:     alg,
		snap:    graph.NewSnapshot(),
		results: make(map[string]*match.Match),
		byEdge:  make(map[graph.EdgeID][]string),
		onMatch: onMatch,
	}
}

// Algorithm returns the static algorithm in use.
func (im *Matcher) Algorithm() iso.Algorithm { return im.alg }

// MatchCount returns the number of timing-valid matches reported so far.
func (im *Matcher) MatchCount() int64 { return im.matches.Load() }

// LiveMatches returns the number of currently live matches.
func (im *Matcher) LiveMatches() int { return len(im.results) }

// Process handles one window slide.
func (im *Matcher) Process(d graph.Edge, expired []graph.Edge) {
	for _, x := range expired {
		im.Delete(x)
	}
	im.Insert(d)
}

// Insert adds an incoming edge: update the window adjacency, extract the
// affected area, and re-search it for matches containing the new edge.
// The window adjacency stores EVERY edge — re-search approaches must keep
// the whole window graph (the space overhead Figs. 17-18 measure) — but
// the re-search itself is skipped for edges matching no query edge
// (Algorithm 3 line 4 grants every method the same label filter, and a
// non-matching edge can never create a match).
func (im *Matcher) Insert(d graph.Edge) {
	im.snap.Add(d)
	if len(im.q.MatchingEdges(d)) == 0 {
		return
	}
	area := im.snap.Neighborhood([]graph.VertexID{d.From, d.To}, im.q.Diameter())
	sub := im.snap.Induced(area)
	iso.FindAll(sub, im.q, im.alg, iso.Options{Required: &d}, func(m *match.Match) bool {
		if !im.timingOK(m) {
			return true
		}
		key := m.Key()
		if _, dup := im.results[key]; dup {
			return true
		}
		kept := m.Clone()
		im.results[key] = kept
		for _, e := range kept.Edges {
			im.byEdge[e.ID] = append(im.byEdge[e.ID], key)
		}
		im.matches.Add(1)
		if im.onMatch != nil {
			im.onMatch(kept.Clone())
		}
		return true
	})
}

// timingOK is the posterior timing-order filter.
func (im *Matcher) timingOK(m *match.Match) bool {
	for _, p := range im.q.OrderPairs() {
		if m.Edges[p[0]].Time >= m.Edges[p[1]].Time {
			return false
		}
	}
	return true
}

// Delete removes an expired edge from the window and drops the matches
// containing it.
func (im *Matcher) Delete(d graph.Edge) {
	im.snap.Remove(d)
	keys := im.byEdge[d.ID]
	delete(im.byEdge, d.ID)
	for _, k := range keys {
		m, ok := im.results[k]
		if !ok {
			continue
		}
		delete(im.results, k)
		for _, e := range m.Edges {
			if e.ID != d.ID {
				im.byEdge[e.ID] = dropKey(im.byEdge[e.ID], k)
			}
		}
	}
}

func dropKey(keys []string, k string) []string {
	for i, x := range keys {
		if x == k {
			keys[i] = keys[len(keys)-1]
			return keys[:len(keys)-1]
		}
	}
	return keys
}

// SpaceBytes estimates resident size: the window adjacency (which the
// incremental-re-search approach must keep) plus the live match set.
func (im *Matcher) SpaceBytes() int64 {
	var b int64 = im.snap.SpaceBytes()
	for _, m := range im.results {
		b += m.SpaceBytes() + 48
	}
	for _, keys := range im.byEdge {
		b += int64(len(keys)) * 24
	}
	return b
}
