package simulation

import (
	"math/rand"
	"testing"

	"timingsubg/internal/core"
	"timingsubg/internal/graph"
	"timingsubg/internal/match"
	"timingsubg/internal/query"
)

// chainQuery builds a→b→c with e1 ≺ e2.
func chainQuery(t testing.TB) *query.Query {
	t.Helper()
	b := query.NewBuilder()
	va, vb, vc := b.AddVertex(1), b.AddVertex(2), b.AddVertex(3)
	e1 := b.AddEdge(va, vb)
	e2 := b.AddEdge(vb, vc)
	b.Before(e1, e2)
	q, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return q
}

// twoCycleQuery builds u(1)⇄v(2) without timing order.
func twoCycleQuery(t testing.TB) *query.Query {
	t.Helper()
	b := query.NewBuilder()
	u, v := b.AddVertex(1), b.AddVertex(2)
	b.AddEdge(u, v)
	b.AddEdge(v, u)
	q, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return q
}

func edge(id int64, from, to int64, fl, tl graph.Label, ts int64) graph.Edge {
	return graph.Edge{
		ID: graph.EdgeID(id), From: graph.VertexID(from), To: graph.VertexID(to),
		FromLabel: fl, ToLabel: tl, Time: graph.Timestamp(ts),
	}
}

// verifyFixpoint checks the defining simulation condition directly on a
// returned relation: every pair has all required witnesses inside the
// relation.
func verifyFixpoint(t *testing.T, q *query.Query, snap *graph.Snapshot, rel Relation) {
	t.Helper()
	for ui := 0; ui < q.NumVertices(); ui++ {
		u := query.VertexID(ui)
		for _, x := range rel[u] {
			for _, eid := range q.Touching(u) {
				qe := q.Edge(eid)
				if qe.From == u {
					ok := false
					for _, deID := range snap.Out(x) {
						de, _ := snap.Edge(deID)
						if (qe.Label == graph.NoLabel || qe.Label == de.EdgeLabel) && rel.Has(qe.To, de.To) {
							ok = true
							break
						}
					}
					if !ok {
						t.Fatalf("pair (%d,%d) lacks out-witness for query edge %d", u, x, eid)
					}
				}
				if qe.To == u {
					ok := false
					for _, deID := range snap.In(x) {
						de, _ := snap.Edge(deID)
						if (qe.Label == graph.NoLabel || qe.Label == de.EdgeLabel) && rel.Has(qe.From, de.From) {
							ok = true
							break
						}
					}
					if !ok {
						t.Fatalf("pair (%d,%d) lacks in-witness for query edge %d", u, x, eid)
					}
				}
			}
		}
	}
}

func TestSimulationSimpleChain(t *testing.T) {
	q := chainQuery(t)
	snap := graph.SnapshotOf([]graph.Edge{
		edge(0, 10, 11, 1, 2, 1),
		edge(1, 11, 12, 2, 3, 2),
	})
	rel := Match(q, snap)
	if rel == nil {
		t.Fatal("no simulation found for exact embedding")
	}
	verifyFixpoint(t, q, snap, rel)
	if !rel.Has(0, 10) || !rel.Has(1, 11) || !rel.Has(2, 12) {
		t.Fatalf("relation misses the embedding: %v", rel)
	}
}

func TestSimulationAllOrNothing(t *testing.T) {
	q := chainQuery(t)
	// Only the first query edge has data; vertex c has no partner.
	snap := graph.SnapshotOf([]graph.Edge{edge(0, 10, 11, 1, 2, 1)})
	if rel := Match(q, snap); rel != nil {
		t.Fatalf("partial structure simulated: %v", rel)
	}
}

// TestSimulationWeakerThanIsomorphism is the Table I semantics gap: a
// 4-cycle alternating labels 1,2 simulates the 2-cycle query (every
// vertex has the required in/out witnesses) although no isomorphic
// embedding of the 2-cycle exists.
func TestSimulationWeakerThanIsomorphism(t *testing.T) {
	q := twoCycleQuery(t)
	fourCycle := []graph.Edge{
		edge(0, 1, 2, 1, 2, 1),
		edge(1, 2, 3, 2, 1, 2),
		edge(2, 3, 4, 1, 2, 3),
		edge(3, 4, 1, 2, 1, 4),
	}
	snap := graph.SnapshotOf(fourCycle)
	rel := Match(q, snap)
	if rel == nil {
		t.Fatal("4-cycle does not simulate 2-cycle")
	}
	verifyFixpoint(t, q, snap, rel)
	if rel.Size() != 4 {
		t.Fatalf("relation size %d, want all 4 vertices", rel.Size())
	}

	// The isomorphism engine must find nothing on the same stream.
	eng := core.New(q, core.Config{})
	for _, e := range fourCycle {
		eng.Process(e, nil)
	}
	if got := eng.Stats().Matches.Load(); got != 0 {
		t.Fatalf("isomorphism engine found %d matches in the 4-cycle", got)
	}
}

// TestTimedMatchPrunesInfeasible: with e1 ≺ e2, data where every
// candidate of e2 precedes every candidate of e1 must yield no timed
// simulation.
func TestTimedMatchPrunesInfeasible(t *testing.T) {
	q := chainQuery(t)
	snap := graph.SnapshotOf([]graph.Edge{
		edge(0, 11, 12, 2, 3, 1), // e2-shaped, earliest
		edge(1, 10, 11, 1, 2, 2), // e1-shaped, latest
	})
	if rel := Match(q, snap); rel == nil {
		t.Fatal("untimed simulation should exist")
	}
	if rel := TimedMatch(q, snap); rel != nil {
		t.Fatalf("timing-infeasible structure survived: %v", rel)
	}
}

func TestTimedMatchKeepsFeasible(t *testing.T) {
	q := chainQuery(t)
	snap := graph.SnapshotOf([]graph.Edge{
		edge(0, 10, 11, 1, 2, 1),
		edge(1, 11, 12, 2, 3, 2),
	})
	rel := TimedMatch(q, snap)
	if rel == nil {
		t.Fatal("feasible structure pruned")
	}
	verifyFixpoint(t, q, snap, rel)
}

// TestSimulationContainsIsomorphismMatches: on random streams, every
// vertex binding of every isomorphism match is contained in the timed
// simulation relation over the same snapshot — simulation is a strict
// over-approximation.
func TestSimulationContainsIsomorphismMatches(t *testing.T) {
	q := chainQuery(t)
	rng := rand.New(rand.NewSource(3))
	labelOf := func(v graph.VertexID) graph.Label { return graph.Label(int(v)%3 + 1) }

	for trial := 0; trial < 20; trial++ {
		var edges []graph.Edge
		for i := 0; i < 60; i++ {
			from := graph.VertexID(rng.Intn(9))
			to := graph.VertexID(rng.Intn(9))
			if from == to {
				to = (to + 1) % 9
			}
			edges = append(edges, graph.Edge{
				ID: graph.EdgeID(i), From: from, To: to,
				FromLabel: labelOf(from), ToLabel: labelOf(to),
				Time: graph.Timestamp(i + 1),
			})
		}
		snap := graph.SnapshotOf(edges)
		rel := TimedMatch(q, snap)

		// Collect isomorphism matches over the full (never-expiring)
		// snapshot by driving the serial engine.
		var bindings []map[query.VertexID]graph.VertexID
		eng := core.New(q, core.Config{OnMatch: func(m *match.Match) {
			b := make(map[query.VertexID]graph.VertexID)
			for qe := 0; qe < q.NumEdges(); qe++ {
				e := q.Edge(query.EdgeID(qe))
				b[e.From] = m.Edges[qe].From
				b[e.To] = m.Edges[qe].To
			}
			bindings = append(bindings, b)
		}})
		for _, e := range edges {
			eng.Process(e, nil)
		}

		for _, b := range bindings {
			if rel == nil {
				t.Fatalf("trial %d: isomorphism matched but timed simulation is empty", trial)
			}
			for u, x := range b {
				if !rel.Has(u, x) {
					t.Fatalf("trial %d: iso binding (%d,%d) missing from simulation relation", trial, u, x)
				}
			}
		}
	}
}
