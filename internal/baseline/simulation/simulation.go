// Package simulation implements continuous pattern matching under
// *graph simulation* semantics with a timing post-filter — the match
// semantics of Song et al. ("Event pattern matching over graph
// streams", VLDB 2015), the Table I comparator whose semantics differ
// from this repository's subgraph isomorphism.
//
// Graph simulation relaxes isomorphism: instead of a bijective
// embedding, it computes the maximal relation R ⊆ V(Q)×V(G) such that
// for (u, x) ∈ R,
//
//  1. L(u) = L(x), and
//  2. for every query edge u→v there is a data edge x→y (matching the
//     query edge's label, if any) with (v, y) ∈ R, and symmetrically
//     for every query edge w→u there is a data edge z→x with (w, z) ∈ R.
//
// Simulation is computable in polynomial time and is strictly weaker
// than isomorphism: every vertex that participates in an isomorphic
// embedding is in the simulation relation, but the relation may also
// contain vertices of structures (e.g. longer cycles, unbounded trees)
// that no isomorphic embedding covers. The tests demonstrate both
// directions; the paper's Section I related-work discussion is exactly
// this semantic gap.
//
// The timing order is handled the way Song et al.'s approach is
// characterized in the paper — as post-processing: the untimed relation
// is computed first, and a fixpoint filter then prunes candidate data
// edges that cannot participate in any timing-consistent assignment at
// the *relation* granularity (for each constraint ε' ≺ ε, a surviving
// candidate of ε needs some candidate of ε' with a smaller timestamp,
// and vice versa). This is the natural relation-level analogue of the
// timing constraint; binding-level joint consistency is precisely what
// simulation semantics gives up relative to isomorphism.
package simulation

import (
	"sort"

	"timingsubg/internal/graph"
	"timingsubg/internal/query"
)

// Relation is a simulation relation: for each query vertex, the sorted
// set of data vertices simulating it. An empty Relation (any query
// vertex with no partners) means the pattern has no simulation match
// in the snapshot; the maximal-relation computation then returns the
// empty map.
type Relation map[query.VertexID][]graph.VertexID

// Has reports whether (u, x) is in the relation.
func (r Relation) Has(u query.VertexID, x graph.VertexID) bool {
	s := r[u]
	i := sort.Search(len(s), func(i int) bool { return s[i] >= x })
	return i < len(s) && s[i] == x
}

// Size returns the total number of (query vertex, data vertex) pairs.
func (r Relation) Size() int {
	n := 0
	for _, s := range r {
		n += len(s)
	}
	return n
}

// Match computes the maximal graph simulation relation of q over the
// snapshot, ignoring timing order. The result is empty (nil map) when
// some query vertex has no simulating data vertex — simulation is
// all-or-nothing per query vertex class.
func Match(q *query.Query, snap *graph.Snapshot) Relation {
	cand := initial(q, snap)
	refineStructure(q, snap, cand)
	return finalize(q, cand)
}

// TimedMatch computes Match and then applies the timing post-filter:
// candidate data edges for each query edge are pruned to those that can
// appear in a relation-level timing-consistent assignment, and the
// relation is re-refined against the surviving edges to a fixpoint.
func TimedMatch(q *query.Query, snap *graph.Snapshot) Relation {
	cand := initial(q, snap)
	refineStructure(q, snap, cand)
	// Iterate: prune edge candidates by timing feasibility, restrict
	// the relation to endpoints of surviving edges, re-refine, repeat
	// until stable.
	for {
		edgeCand := edgeCandidates(q, snap, cand)
		if !pruneByTiming(q, edgeCand) {
			// Timing pruning removed nothing; relation is stable.
			break
		}
		if !restrictToEdges(q, cand, edgeCand) {
			break
		}
		refineStructure(q, snap, cand)
	}
	return finalize(q, cand)
}

// initial computes the label-based candidate sets.
func initial(q *query.Query, snap *graph.Snapshot) map[query.VertexID]map[graph.VertexID]bool {
	cand := make(map[query.VertexID]map[graph.VertexID]bool, q.NumVertices())
	for u := query.VertexID(0); int(u) < q.NumVertices(); u++ {
		set := make(map[graph.VertexID]bool)
		for _, x := range snap.VerticesWithLabel(q.VertexLabel(u)) {
			set[x] = true
		}
		cand[u] = set
	}
	return cand
}

// refineStructure runs the standard simulation fixpoint: drop (u, x)
// when some query edge at u has no witness at x.
func refineStructure(q *query.Query, snap *graph.Snapshot, cand map[query.VertexID]map[graph.VertexID]bool) {
	for changed := true; changed; {
		changed = false
		for ui := 0; ui < q.NumVertices(); ui++ {
			u := query.VertexID(ui)
			for x := range cand[u] {
				if !hasAllWitnesses(q, snap, cand, u, x) {
					delete(cand[u], x)
					changed = true
				}
			}
		}
	}
}

// hasAllWitnesses checks condition (2) for the pair (u, x).
func hasAllWitnesses(q *query.Query, snap *graph.Snapshot, cand map[query.VertexID]map[graph.VertexID]bool, u query.VertexID, x graph.VertexID) bool {
	for _, eid := range q.Touching(u) {
		qe := q.Edge(eid)
		if qe.From == u {
			if !hasWitness(snap.Out(x), snap, qe.Label, cand[qe.To]) {
				return false
			}
		}
		if qe.To == u {
			if !hasWitnessIn(snap.In(x), snap, qe.Label, cand[qe.From]) {
				return false
			}
		}
	}
	return true
}

func hasWitness(out []graph.EdgeID, snap *graph.Snapshot, lbl graph.Label, partners map[graph.VertexID]bool) bool {
	for _, deID := range out {
		de, ok := snap.Edge(deID)
		if !ok {
			continue
		}
		if lbl != graph.NoLabel && lbl != de.EdgeLabel {
			continue
		}
		if partners[de.To] {
			return true
		}
	}
	return false
}

func hasWitnessIn(in []graph.EdgeID, snap *graph.Snapshot, lbl graph.Label, partners map[graph.VertexID]bool) bool {
	for _, deID := range in {
		de, ok := snap.Edge(deID)
		if !ok {
			continue
		}
		if lbl != graph.NoLabel && lbl != de.EdgeLabel {
			continue
		}
		if partners[de.From] {
			return true
		}
	}
	return false
}

// edgeCandidates lists, for each query edge, the data edges whose
// endpoints are in the current relation and whose labels agree.
func edgeCandidates(q *query.Query, snap *graph.Snapshot, cand map[query.VertexID]map[graph.VertexID]bool) [][]graph.Edge {
	out := make([][]graph.Edge, q.NumEdges())
	snap.Edges(func(de graph.Edge) bool {
		for i := 0; i < q.NumEdges(); i++ {
			qe := q.Edge(query.EdgeID(i))
			if qe.Label != graph.NoLabel && qe.Label != de.EdgeLabel {
				continue
			}
			if cand[qe.From][de.From] && cand[qe.To][de.To] {
				out[i] = append(out[i], de)
			}
		}
		return true
	})
	return out
}

// pruneByTiming drops candidates of query edge ε that cannot satisfy a
// timing constraint against the candidates of the other side: for each
// ε' ≺ ε, a candidate σ of ε needs some candidate σ' of ε' with
// t(σ') < t(σ); symmetrically for ε ≺ ε'. Iterates to a local fixpoint
// and reports whether anything was pruned.
func pruneByTiming(q *query.Query, edgeCand [][]graph.Edge) bool {
	pruned := false
	for changed := true; changed; {
		changed = false
		for i := 0; i < q.NumEdges(); i++ {
			var kept []graph.Edge
			for _, de := range edgeCand[i] {
				if timingFeasible(q, edgeCand, query.EdgeID(i), de) {
					kept = append(kept, de)
				}
			}
			if len(kept) != len(edgeCand[i]) {
				edgeCand[i] = kept
				changed = true
				pruned = true
			}
		}
	}
	return pruned
}

func timingFeasible(q *query.Query, edgeCand [][]graph.Edge, e query.EdgeID, de graph.Edge) bool {
	for j := 0; j < q.NumEdges(); j++ {
		other := query.EdgeID(j)
		if other == e {
			continue
		}
		if q.Precedes(other, e) {
			if !hasEarlier(edgeCand[j], de.Time) {
				return false
			}
		}
		if q.Precedes(e, other) {
			if !hasLater(edgeCand[j], de.Time) {
				return false
			}
		}
	}
	return true
}

func hasEarlier(cands []graph.Edge, t graph.Timestamp) bool {
	for _, c := range cands {
		if c.Time < t {
			return true
		}
	}
	return false
}

func hasLater(cands []graph.Edge, t graph.Timestamp) bool {
	for _, c := range cands {
		if c.Time > t {
			return true
		}
	}
	return false
}

// restrictToEdges shrinks the relation to vertices that appear as an
// endpoint of some surviving candidate edge (vertices incident to no
// query edge keep their candidates). Reports whether anything shrank.
func restrictToEdges(q *query.Query, cand map[query.VertexID]map[graph.VertexID]bool, edgeCand [][]graph.Edge) bool {
	keep := make(map[query.VertexID]map[graph.VertexID]bool, q.NumVertices())
	for i := 0; i < q.NumEdges(); i++ {
		qe := q.Edge(query.EdgeID(i))
		for _, de := range edgeCand[i] {
			if keep[qe.From] == nil {
				keep[qe.From] = make(map[graph.VertexID]bool)
			}
			if keep[qe.To] == nil {
				keep[qe.To] = make(map[graph.VertexID]bool)
			}
			keep[qe.From][de.From] = true
			keep[qe.To][de.To] = true
		}
	}
	changed := false
	for ui := 0; ui < q.NumVertices(); ui++ {
		u := query.VertexID(ui)
		if len(q.Touching(u)) == 0 {
			continue
		}
		for x := range cand[u] {
			if !keep[u][x] {
				delete(cand[u], x)
				changed = true
			}
		}
	}
	return changed
}

// finalize converts candidate sets to the all-or-nothing Relation.
func finalize(q *query.Query, cand map[query.VertexID]map[graph.VertexID]bool) Relation {
	for ui := 0; ui < q.NumVertices(); ui++ {
		if len(cand[query.VertexID(ui)]) == 0 {
			return nil
		}
	}
	rel := make(Relation, len(cand))
	for u, set := range cand {
		vs := make([]graph.VertexID, 0, len(set))
		for x := range set {
			vs = append(vs, x)
		}
		sort.Slice(vs, func(i, j int) bool { return vs[i] < vs[j] })
		rel[u] = vs
	}
	return rel
}
