package simulation

import (
	"math/rand"
	"testing"

	"timingsubg/internal/graph"
)

// BenchmarkTimedMatch measures one per-snapshot timed-simulation
// evaluation — the unit of work a Song-et-al.-style system pays per
// window, against which the incremental isomorphism engine's per-edge
// cost is contrasted in the documentation.
func BenchmarkTimedMatch(b *testing.B) {
	var tb testing.TB = b
	q := chainQuery(tb)
	rng := rand.New(rand.NewSource(4))
	labelOf := func(v graph.VertexID) graph.Label { return graph.Label(int(v)%3 + 1) }
	var edges []graph.Edge
	for i := 0; i < 2000; i++ {
		from := graph.VertexID(rng.Intn(200))
		to := graph.VertexID(rng.Intn(200))
		if from == to {
			to = (to + 1) % 200
		}
		edges = append(edges, graph.Edge{
			ID: graph.EdgeID(i), From: from, To: to,
			FromLabel: labelOf(from), ToLabel: labelOf(to),
			Time: graph.Timestamp(i + 1),
		})
	}
	snap := graph.SnapshotOf(edges)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if rel := TimedMatch(q, snap); rel == nil {
			b.Fatal("no relation on dense snapshot")
		}
	}
}
