package sjtree

import (
	"testing"

	"timingsubg/internal/graph"
	"timingsubg/internal/match"
	"timingsubg/internal/query"
)

// pathQuery builds a→b→c with optional order e1 ≺ e2.
func pathQuery(t *testing.T, ordered bool) (*query.Query, []graph.Label) {
	t.Helper()
	labels := graph.NewLabels()
	ls := []graph.Label{labels.Intern("a"), labels.Intern("b"), labels.Intern("c")}
	b := query.NewBuilder()
	va, vb, vc := b.AddVertex(ls[0]), b.AddVertex(ls[1]), b.AddVertex(ls[2])
	e1 := b.AddEdge(va, vb)
	e2 := b.AddEdge(vb, vc)
	if ordered {
		b.Before(e1, e2)
	}
	q, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return q, ls
}

func TestSJTreeFindsOutOfOrderArrivals(t *testing.T) {
	// Without timing order, SJ-tree must find the match regardless of
	// arrival order (its defining difference from the Timing engine).
	q, ls := pathQuery(t, false)
	var got []string
	m := New(q, func(mm *match.Match) {
		if err := mm.Verify(q); err != nil {
			t.Fatal(err)
		}
		got = append(got, mm.Key())
	})
	// b→c arrives before a→b.
	m.Insert(graph.Edge{ID: 1, From: 20, To: 30, FromLabel: ls[1], ToLabel: ls[2], Time: 1})
	m.Insert(graph.Edge{ID: 2, From: 10, To: 20, FromLabel: ls[0], ToLabel: ls[1], Time: 2})
	if len(got) != 1 {
		t.Fatalf("want 1 match, got %v", got)
	}
}

func TestSJTreePosteriorTimingFilter(t *testing.T) {
	q, ls := pathQuery(t, true)
	m := New(q, nil)
	// Reversed arrivals: structurally fine, timing filter must drop it.
	m.Insert(graph.Edge{ID: 1, From: 20, To: 30, FromLabel: ls[1], ToLabel: ls[2], Time: 1})
	m.Insert(graph.Edge{ID: 2, From: 10, To: 20, FromLabel: ls[0], ToLabel: ls[1], Time: 2})
	if m.MatchCount() != 0 {
		t.Fatal("posterior filter must reject reversed arrivals")
	}
	// SJ-tree still materialized the partial matches — that is the
	// wasted space the Timing engine prunes.
	if m.PartialMatchCount() == 0 {
		t.Fatal("SJ-tree stores partials it cannot use (no timing pruning)")
	}
	// Correct order on fresh vertices matches.
	m.Insert(graph.Edge{ID: 3, From: 11, To: 21, FromLabel: ls[0], ToLabel: ls[1], Time: 3})
	m.Insert(graph.Edge{ID: 4, From: 21, To: 31, FromLabel: ls[1], ToLabel: ls[2], Time: 4})
	if m.MatchCount() != 1 {
		t.Fatalf("want 1 match, got %d", m.MatchCount())
	}
}

func TestSJTreeDeleteScans(t *testing.T) {
	q, ls := pathQuery(t, false)
	m := New(q, nil)
	e1 := graph.Edge{ID: 1, From: 10, To: 20, FromLabel: ls[0], ToLabel: ls[1], Time: 1}
	e2 := graph.Edge{ID: 2, From: 20, To: 30, FromLabel: ls[1], ToLabel: ls[2], Time: 2}
	m.Insert(e1)
	m.Insert(e2)
	before := m.PartialMatchCount()
	if before == 0 {
		t.Fatal("partials expected")
	}
	m.Delete(e1)
	after := m.PartialMatchCount()
	if after >= before {
		t.Fatalf("delete must remove partials containing the edge: %d -> %d", before, after)
	}
	// Singles index must also drop the edge.
	m.Insert(graph.Edge{ID: 3, From: 20, To: 31, FromLabel: ls[1], ToLabel: ls[2], Time: 3})
	if m.MatchCount() != 1 {
		t.Fatalf("only the pre-deletion match should have been reported, got %d", m.MatchCount())
	}
}

func TestSJTreeSpaceAccounting(t *testing.T) {
	q, ls := pathQuery(t, false)
	m := New(q, nil)
	if m.SpaceBytes() != 0 {
		t.Error("empty matcher should report ~0 space")
	}
	m.Insert(graph.Edge{ID: 1, From: 10, To: 20, FromLabel: ls[0], ToLabel: ls[1], Time: 1})
	if m.SpaceBytes() <= 0 {
		t.Error("space must grow with stored partials")
	}
}

func TestConnectedOrderIsPrefixConnected(t *testing.T) {
	q, _ := pathQuery(t, false)
	order := connectedOrder(q)
	if len(order) != q.NumEdges() {
		t.Fatal("order must cover all edges")
	}
	for i := 1; i < len(order); i++ {
		connected := false
		for j := 0; j < i; j++ {
			if q.EdgesAdjacent(order[i], order[j]) {
				connected = true
			}
		}
		if !connected {
			t.Fatalf("edge %d disconnected from prefix", order[i])
		}
	}
}
