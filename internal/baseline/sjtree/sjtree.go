// Package sjtree reimplements the SJ-tree baseline (Choudhury et al.,
// EDBT 2015) as described in the paper's related work and Section VII-C:
// a left-deep subgraph-join tree whose nodes materialize all partial
// matches of growing prefixes of the query, with no timing-order pruning.
// Timing constraints are verified posteriorly on complete matches, the
// way the paper evaluates SJ-tree. Expiry enumerates stored partial
// matches to find those containing the expired edge — the maintenance
// cost the MS-tree is designed to avoid.
package sjtree

import (
	"sync/atomic"

	"timingsubg/internal/graph"
	"timingsubg/internal/match"
	"timingsubg/internal/query"
)

// Matcher is a continuous SJ-tree matcher.
type Matcher struct {
	q     *query.Query
	order []query.EdgeID // connected left-deep leaf order
	// nodes[i] holds all partial matches of the prefix order[0..i].
	nodes [][]*match.Match
	// singles[i] holds the in-window data edges matching order[i].
	singles [][]graph.Edge

	onMatch func(*match.Match)
	matches atomic.Int64
	joins   atomic.Int64
}

// New builds an SJ-tree matcher for q. onMatch may be nil.
func New(q *query.Query, onMatch func(*match.Match)) *Matcher {
	return &Matcher{
		q:       q,
		order:   connectedOrder(q),
		nodes:   make([][]*match.Match, q.NumEdges()),
		singles: make([][]graph.Edge, q.NumEdges()),
		onMatch: onMatch,
	}
}

// connectedOrder returns a prefix-connected permutation of the query
// edges (SJ-tree's left-deep join order; we use the lowest-ID connected
// expansion, selectivity ordering being data-dependent).
func connectedOrder(q *query.Query) []query.EdgeID {
	m := q.NumEdges()
	order := []query.EdgeID{0}
	used := make([]bool, m)
	used[0] = true
	for len(order) < m {
		for c := 0; c < m; c++ {
			if used[c] {
				continue
			}
			for _, o := range order {
				if q.EdgesAdjacent(query.EdgeID(c), o) {
					used[c] = true
					order = append(order, query.EdgeID(c))
					c = m
					break
				}
			}
		}
	}
	return order
}

// MatchCount returns the number of complete (timing-valid) matches
// reported so far.
func (t *Matcher) MatchCount() int64 { return t.matches.Load() }

// JoinOps returns the number of compatibility checks performed.
func (t *Matcher) JoinOps() int64 { return t.joins.Load() }

// Process handles one window slide: expired edges leave, then d enters.
func (t *Matcher) Process(d graph.Edge, expired []graph.Edge) {
	for _, x := range expired {
		t.Delete(x)
	}
	t.Insert(d)
}

// Insert adds an incoming edge: for every leaf position it matches, join
// it with the prefix matches to its left, then cascade the new partial
// matches rightward through the stored single-edge match sets.
func (t *Matcher) Insert(d graph.Edge) {
	for i, qe := range t.order {
		if !t.q.MatchesData(qe, d) {
			continue
		}
		t.singles[i] = append(t.singles[i], d)

		var delta []*match.Match
		if i == 0 {
			m := match.New(t.q)
			if m.CanBindStructural(t.q, qe, d) {
				m.Bind(t.q, qe, d)
				delta = append(delta, m)
			}
		} else {
			for _, left := range t.nodes[i-1] {
				t.joins.Add(1)
				if left.CanBindStructural(t.q, qe, d) {
					nm := left.Clone()
					nm.Bind(t.q, qe, d)
					delta = append(delta, nm)
				}
			}
		}
		t.absorb(i, delta)
	}
}

// absorb stores delta at node i and cascades it through the remaining
// leaves. Complete structural matches are timing-checked and reported.
func (t *Matcher) absorb(i int, delta []*match.Match) {
	t.nodes[i] = append(t.nodes[i], delta...)
	for j := i + 1; j < len(t.order) && len(delta) > 0; j++ {
		qe := t.order[j]
		var next []*match.Match
		for _, m := range delta {
			for _, d := range t.singles[j] {
				t.joins.Add(1)
				if m.CanBindStructural(t.q, qe, d) {
					nm := m.Clone()
					nm.Bind(t.q, qe, d)
					next = append(next, nm)
				}
			}
		}
		t.nodes[j] = append(t.nodes[j], next...)
		delta = next
	}
	// Report the complete structural matches after the posterior timing
	// filter.
	for _, m := range delta {
		if !m.Complete(t.q) {
			continue
		}
		if t.timingOK(m) {
			t.matches.Add(1)
			if t.onMatch != nil {
				t.onMatch(m.Clone())
			}
		}
	}
}

// timingOK is the posterior timing-order filter.
func (t *Matcher) timingOK(m *match.Match) bool {
	for _, p := range t.q.OrderPairs() {
		if m.Edges[p[0]].Time >= m.Edges[p[1]].Time {
			return false
		}
	}
	return true
}

// Delete removes an expired edge by enumerating every stored partial
// match (the SJ-tree maintenance cost the paper highlights).
func (t *Matcher) Delete(d graph.Edge) {
	for i := range t.singles {
		keep := t.singles[i][:0]
		for _, e := range t.singles[i] {
			if e.ID != d.ID {
				keep = append(keep, e)
			}
		}
		t.singles[i] = keep
	}
	for i := range t.nodes {
		keep := t.nodes[i][:0]
		for _, m := range t.nodes[i] {
			if !m.HasDataEdge(d.ID) {
				keep = append(keep, m)
			}
		}
		// Zero the tail so dropped matches are collectable.
		for j := len(keep); j < len(t.nodes[i]); j++ {
			t.nodes[i][j] = nil
		}
		t.nodes[i] = keep
	}
}

// SpaceBytes estimates resident size: all materialized partial matches
// plus the single-edge match sets.
func (t *Matcher) SpaceBytes() int64 {
	var b int64
	for i := range t.nodes {
		for _, m := range t.nodes[i] {
			b += m.SpaceBytes()
		}
		b += int64(len(t.singles[i])) * 56
	}
	return b
}

// PartialMatchCount returns the number of stored partial matches.
func (t *Matcher) PartialMatchCount() int64 {
	var n int64
	for i := range t.nodes {
		n += int64(len(t.nodes[i]))
	}
	return n
}
