package fleetpool

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestAssignBalancesLeastLoaded(t *testing.T) {
	p := New(4)
	defer p.Close()
	for h := 0; h < 8; h++ {
		p.Assign(h)
	}
	for s, n := range p.Load() {
		if n != 2 {
			t.Fatalf("shard %d has %d handles, want 2 (load %v)", s, n, p.Load())
		}
	}
	// Releasing two handles from one shard makes it the next target.
	h0 := p.Handles(0)
	p.Release(h0[0])
	p.Release(h0[0]) // slice shifted; release the new first too
	if s := p.Assign(100); s != 0 {
		t.Fatalf("Assign after Release picked shard %d, want the drained shard 0", s)
	}
	if s, ok := p.ShardOf(100); !ok || s != 0 {
		t.Fatalf("ShardOf(100) = %d,%v", s, ok)
	}
}

func TestReleaseUnknownIsNoop(t *testing.T) {
	p := New(2)
	defer p.Close()
	p.Release(42)
	if got := p.Load(); got[0] != 0 || got[1] != 0 {
		t.Fatalf("load after no-op release: %v", got)
	}
}

func TestRunBarrierAndPinning(t *testing.T) {
	p := New(3)
	defer p.Close()
	var ran [3]atomic.Int64
	for round := 0; round < 100; round++ {
		p.Run([]int{0, 1, 2}, func(shard int) {
			ran[shard].Add(1)
		})
		// The barrier guarantees all three increments are visible here.
		for s := range ran {
			if got := ran[s].Load(); got != int64(round+1) {
				t.Fatalf("round %d: shard %d ran %d times", round, s, got)
			}
		}
	}
	// Subset dispatch leaves the others untouched.
	p.Run([]int{1}, func(shard int) { ran[shard].Add(1) })
	if ran[0].Load() != 100 || ran[1].Load() != 101 || ran[2].Load() != 100 {
		t.Fatalf("subset run counts: %d %d %d", ran[0].Load(), ran[1].Load(), ran[2].Load())
	}
}

func TestRunEmptyAndCloseIdleWorkers(t *testing.T) {
	p := New(2)
	p.Run(nil, func(int) { t.Fatal("fn called for empty shard list") })
	p.Close() // must not hang on idle workers
}

// TestShardSequentialWithinRun pins the ordering guarantee the fleet
// relies on: work dispatched to one shard in one Run never interleaves
// with itself (a shard is one worker), even while other shards run
// concurrently.
func TestShardSequentialWithinRun(t *testing.T) {
	p := New(4)
	defer p.Close()
	var mu sync.Mutex
	seen := make(map[int][]int)
	for round := 0; round < 50; round++ {
		p.Run([]int{0, 1, 2, 3}, func(shard int) {
			for i := 0; i < 10; i++ {
				mu.Lock()
				seen[shard] = append(seen[shard], round*10+i)
				mu.Unlock()
			}
		})
	}
	for shard, order := range seen {
		for i := 1; i < len(order); i++ {
			if order[i] != order[i-1]+1 {
				t.Fatalf("shard %d work interleaved at %d: %v -> %v", shard, i, order[i-1], order[i])
			}
		}
	}
}
