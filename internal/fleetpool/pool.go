// Package fleetpool is the sharded execution substrate of the fleet
// engine: a fixed set of long-lived shard workers plus a load-balanced
// assignment of member handles to shards.
//
// The fleet engine partitions its member queries across N shards, each
// evaluated by one pinned worker goroutine, so that the per-edge fan-out
// of Feed/FeedBatch runs concurrently across shards while every member
// still sees its edges strictly in stream order (a member lives on
// exactly one shard, and a shard evaluates its work list sequentially).
// Run is the per-call barrier: it returns only when every dispatched
// shard has finished, which is what preserves the engine contract that a
// feed call's effects are complete when the call returns.
//
// Concurrency contract: the assignment mutators (Assign, Release) must
// be serialized by the caller against each other and against Run,
// Handles and Load — the fleet engine does this with its roster lock
// (mutators under the write lock, dispatch and sampling under the read
// lock). Run itself may be called by one goroutine at a time (the fleet
// feed path, which the Engine contract already serializes).
package fleetpool

import (
	"sync"
	"sync/atomic"
	"time"

	"timingsubg/internal/stats"
)

// task is one unit of shard work plus the barrier it reports to.
type task struct {
	fn   func(shard int)
	sent time.Time // dispatch time, for WaitHist; zero when unmetered
	done *sync.WaitGroup
}

// Pool runs shard work on pinned workers and tracks which member handle
// lives on which shard. Create with New, stop with Close.
type Pool struct {
	tasks   []chan task
	workers sync.WaitGroup

	shards  [][]int     // member handles per shard, in assignment order
	shardOf map[int]int // handle → shard

	// WaitHist observes queue wait (Run dispatch → worker pickup) and
	// ExecHist the task execution time, per shard task. Both are
	// optional; set them right after New, before the first Run (the
	// channel handoff orders the writes for the workers). Nil disables.
	WaitHist *stats.AtomicHistogram
	ExecHist *stats.AtomicHistogram

	// busy accumulates each shard's cumulative task execution time, in
	// nanoseconds — the per-shard utilization ledger behind Busy. Only
	// metered tasks contribute (the histograms already pay for the clock
	// reads; an unmetered pool stays clock-free).
	busy []atomic.Int64
}

// New starts a pool of n shard workers (n < 1 is treated as 1).
func New(n int) *Pool {
	if n < 1 {
		n = 1
	}
	p := &Pool{
		tasks:   make([]chan task, n),
		shards:  make([][]int, n),
		shardOf: make(map[int]int),
		busy:    make([]atomic.Int64, n),
	}
	for i := range p.tasks {
		// Capacity 1: Run dispatches at most one task per shard per
		// call, so sends never block on a busy worker.
		p.tasks[i] = make(chan task, 1)
		p.workers.Add(1)
		go p.worker(i)
	}
	return p
}

func (p *Pool) worker(shard int) {
	defer p.workers.Done()
	for t := range p.tasks[shard] {
		if t.sent.IsZero() {
			t.fn(shard)
		} else {
			start := time.Now()
			p.WaitHist.Observe(start.Sub(t.sent))
			t.fn(shard)
			d := time.Since(start)
			p.ExecHist.Observe(d)
			p.busy[shard].Add(int64(d))
		}
		t.done.Done()
	}
}

// Workers returns the shard count.
func (p *Pool) Workers() int { return len(p.tasks) }

// Assign places handle on the least-loaded shard and returns that
// shard's index. Assigning an already-assigned handle is a bug.
func (p *Pool) Assign(handle int) int {
	best := 0
	for s := 1; s < len(p.shards); s++ {
		if len(p.shards[s]) < len(p.shards[best]) {
			best = s
		}
	}
	p.shards[best] = append(p.shards[best], handle)
	p.shardOf[handle] = best
	return best
}

// Release removes handle from its shard (the dynamic-fleet retire path);
// the freed capacity makes that shard the preferred target of the next
// Assign. Releasing an unknown handle is a no-op.
func (p *Pool) Release(handle int) {
	s, ok := p.shardOf[handle]
	if !ok {
		return
	}
	delete(p.shardOf, handle)
	hs := p.shards[s]
	for i, h := range hs {
		if h == handle {
			p.shards[s] = append(hs[:i], hs[i+1:]...)
			return
		}
	}
}

// ShardOf returns the shard that owns handle.
func (p *Pool) ShardOf(handle int) (int, bool) {
	s, ok := p.shardOf[handle]
	return s, ok
}

// Handles returns shard's member handles in assignment order. The slice
// is the pool's own; callers must not mutate it and must hold the same
// exclusion they hold for Assign/Release while reading it.
func (p *Pool) Handles(shard int) []int { return p.shards[shard] }

// Busy returns each shard's cumulative task execution time in
// nanoseconds (a fresh slice) — the skew between shards is the
// fair-share scheduler's view of how evenly member work spreads. All
// zeros when the pool runs unmetered (no histograms installed).
func (p *Pool) Busy() []int64 {
	out := make([]int64, len(p.busy))
	for i := range p.busy {
		out[i] = p.busy[i].Load()
	}
	return out
}

// Load returns the number of handles on each shard (a fresh slice).
func (p *Pool) Load() []int {
	out := make([]int, len(p.shards))
	for s := range p.shards {
		out[s] = len(p.shards[s])
	}
	return out
}

// Run invokes fn(shard) on each listed shard's worker concurrently and
// returns when all of them have finished — the per-call barrier. Shards
// not listed are untouched. Listing a shard twice is a bug.
func (p *Pool) Run(shards []int, fn func(shard int)) {
	if len(shards) == 0 {
		return
	}
	var done sync.WaitGroup
	done.Add(len(shards))
	var sent time.Time
	if p.WaitHist != nil && p.ExecHist != nil {
		sent = time.Now()
	}
	for _, s := range shards {
		p.tasks[s] <- task{fn: fn, sent: sent, done: &done}
	}
	done.Wait()
}

// Close stops the workers after any in-flight Run completes. The pool
// must not be used after Close.
func (p *Pool) Close() {
	for _, ch := range p.tasks {
		close(ch)
	}
	p.workers.Wait()
}
