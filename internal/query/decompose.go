package query

import (
	"math/rand"
	"sort"
)

// Decomposition is a TC decomposition of a query (Section III-B): a set
// of TC-subqueries that partition E(Q), arranged in a prefix-connected
// join order (each prefix of Subqueries induces a weakly connected
// subquery).
type Decomposition struct {
	Subqueries []*TCSubquery
}

// K returns the decomposition size (number of TC-subqueries).
func (d *Decomposition) K() int { return len(d.Subqueries) }

// CoversExactly reports whether the subqueries exactly partition the
// edges of q: pairwise disjoint and their union is E(Q).
func (d *Decomposition) CoversExactly(q *Query) bool {
	var union uint64
	for _, s := range d.Subqueries {
		if union&s.Mask != 0 {
			return false
		}
		union |= s.Mask
	}
	want := uint64(1)<<uint(q.NumEdges()) - 1
	return union == want
}

// Locate returns the subquery index and position within its timing
// sequence for query edge e, or (-1, -1) if e is not covered.
func (d *Decomposition) Locate(e EdgeID) (sub, pos int) {
	for i, s := range d.Subqueries {
		if p := s.Pos(e); p >= 0 {
			return i, p
		}
	}
	return -1, -1
}

// Decompose computes the paper's cost-model-guided decomposition: greedily
// pick the largest remaining TC-subquery from TCsub(Q) that is edge-
// disjoint from those already picked, until Q is covered (Algorithm 6),
// then arrange the pick into a joint-number-maximizing prefix-connected
// join order (Section VI-C).
func Decompose(q *Query) *Decomposition {
	return orderDecomposition(q, greedyPick(q, TCSub(q)), nil)
}

// DecomposeWithin is Decompose but reuses a precomputed TCsub(Q).
func DecomposeWithin(q *Query, tcsub []*TCSubquery) *Decomposition {
	return orderDecomposition(q, greedyPick(q, tcsub), nil)
}

// DecomposeRandom returns a random TC decomposition (the paper's
// Timing-RD alternative): it repeatedly picks a uniformly random
// remaining TC-subquery disjoint from previous picks. If orderRandom is
// non-nil the join order is also randomized (Timing-RDJ); otherwise the
// joint-number order is used.
func DecomposeRandom(q *Query, pickRNG, orderRNG *rand.Rand) *Decomposition {
	tcsub := TCSub(q)
	var picked []*TCSubquery
	var covered uint64
	want := uint64(1)<<uint(q.NumEdges()) - 1
	avail := append([]*TCSubquery(nil), tcsub...)
	for covered != want {
		// Keep only candidates disjoint from the current cover.
		n := 0
		for _, s := range avail {
			if s.Mask&covered == 0 {
				avail[n] = s
				n++
			}
		}
		avail = avail[:n]
		s := avail[pickRNG.Intn(len(avail))]
		picked = append(picked, s)
		covered |= s.Mask
	}
	return orderDecomposition(q, picked, orderRNG)
}

// DecomposeOrdered computes the greedy decomposition but applies a random
// prefix-connected join order (the paper's Timing-RJ alternative).
func DecomposeOrdered(q *Query, orderRNG *rand.Rand) *Decomposition {
	return orderDecomposition(q, greedyPick(q, TCSub(q)), orderRNG)
}

// greedyPick implements Algorithm 6: largest-first disjoint cover.
// tcsub must be sorted size-descending (TCSub guarantees this). Singleton
// subqueries are always present, so the greedy loop always covers Q.
func greedyPick(q *Query, tcsub []*TCSubquery) []*TCSubquery {
	var picked []*TCSubquery
	var covered uint64
	want := uint64(1)<<uint(q.NumEdges()) - 1
	for _, s := range tcsub {
		if covered == want {
			break
		}
		if s.Mask&covered == 0 {
			picked = append(picked, s)
			covered |= s.Mask
		}
	}
	return picked
}

// orderDecomposition arranges picked subqueries into a prefix-connected
// permutation. With rng == nil it maximizes the joint number (Definition
// 12) at each step; with rng != nil it picks uniformly among connected
// candidates (Timing-RJ / Timing-RDJ).
func orderDecomposition(q *Query, picked []*TCSubquery, rng *rand.Rand) *Decomposition {
	if len(picked) <= 1 {
		return &Decomposition{Subqueries: picked}
	}
	rest := append([]*TCSubquery(nil), picked...)
	var ordered []*TCSubquery
	var unionMask uint64

	take := func(i int) {
		ordered = append(ordered, rest[i])
		unionMask |= rest[i].Mask
		rest = append(rest[:i], rest[i+1:]...)
	}

	if rng == nil {
		// Seed with the connected pair of maximum joint number.
		bi, bj, best := -1, -1, -1
		for i := range rest {
			for j := i + 1; j < len(rest); j++ {
				if !masksConnected(q, rest[i].Mask, rest[j].Mask) {
					continue
				}
				if jn := JointNumber(q, rest[i].Mask, rest[j].Mask); jn > best {
					best, bi, bj = jn, i, j
				}
			}
		}
		if bi < 0 {
			// Q is connected, so some connected pair exists; fall back to
			// the first connected pair for safety.
			bi, bj = firstConnectedPair(q, rest)
		}
		take(bj) // take larger index first so bi stays valid
		take(bi)
	} else {
		i, j := randomConnectedPair(q, rest, rng)
		take(j)
		take(i)
	}

	for len(rest) > 0 {
		bi, best := -1, -1
		var candidates []int
		for i, s := range rest {
			if !masksConnected(q, unionMask, s.Mask) {
				continue
			}
			if rng != nil {
				candidates = append(candidates, i)
				continue
			}
			if jn := JointNumber(q, unionMask, s.Mask); jn > best {
				best, bi = jn, i
			}
		}
		switch {
		case rng != nil && len(candidates) > 0:
			take(candidates[rng.Intn(len(candidates))])
		case rng == nil && bi >= 0:
			take(bi)
		default:
			// Should be unreachable for connected queries; take any to
			// guarantee termination.
			take(0)
		}
	}
	return &Decomposition{Subqueries: ordered}
}

func firstConnectedPair(q *Query, subs []*TCSubquery) (int, int) {
	for i := range subs {
		for j := i + 1; j < len(subs); j++ {
			if masksConnected(q, subs[i].Mask, subs[j].Mask) {
				return i, j
			}
		}
	}
	return 0, 1
}

func randomConnectedPair(q *Query, subs []*TCSubquery, rng *rand.Rand) (int, int) {
	var pairs [][2]int
	for i := range subs {
		for j := i + 1; j < len(subs); j++ {
			if masksConnected(q, subs[i].Mask, subs[j].Mask) {
				pairs = append(pairs, [2]int{i, j})
			}
		}
	}
	if len(pairs) == 0 {
		return 0, 1
	}
	p := pairs[rng.Intn(len(pairs))]
	return p[0], p[1]
}

// masksConnected reports whether the subqueries induced by masks a and b
// share at least one vertex.
func masksConnected(q *Query, a, b uint64) bool {
	va := maskVertices(q, a)
	for _, v := range maskVertexList(q, b) {
		if va[v] {
			return true
		}
	}
	return false
}

func maskVertices(q *Query, mask uint64) map[VertexID]bool {
	out := make(map[VertexID]bool)
	for e := 0; mask != 0; e++ {
		if mask&1 != 0 {
			qe := q.Edge(EdgeID(e))
			out[qe.From] = true
			out[qe.To] = true
		}
		mask >>= 1
	}
	return out
}

func maskVertexList(q *Query, mask uint64) []VertexID {
	set := maskVertices(q, mask)
	out := make([]VertexID, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// JointNumber computes JN between the subqueries induced by masks a and b
// (Definition 12): the number of common vertices plus the number of edge
// pairs across a×b related by the timing order (in either direction).
func JointNumber(q *Query, a, b uint64) int {
	va := maskVertices(q, a)
	nv := 0
	for v := range maskVertices(q, b) {
		if va[v] {
			nv++
		}
	}
	nt := 0
	for i := 0; i < q.NumEdges(); i++ {
		if a&(1<<uint(i)) == 0 {
			continue
		}
		for j := 0; j < q.NumEdges(); j++ {
			if b&(1<<uint(j)) == 0 {
				continue
			}
			if q.Precedes(EdgeID(i), EdgeID(j)) || q.Precedes(EdgeID(j), EdgeID(i)) {
				nt++
			}
		}
	}
	return nv + nt
}

// DistinctEdgeTerms returns d, the number of distinct "term edge labels"
// in q: the combination of edge label and endpoint labels (Section VI-A).
func DistinctEdgeTerms(q *Query) int {
	type term struct {
		f, t, l int32
	}
	set := make(map[term]bool)
	for _, e := range q.Edges() {
		set[term{int32(q.VertexLabel(e.From)), int32(q.VertexLabel(e.To)), int32(e.Label)}] = true
	}
	return len(set)
}

// ExpectedJoinOps evaluates the paper's cost model (Theorem 7): the
// expected number of join operations for one incoming edge when q is
// decomposed into k TC-subqueries, N = (1/d)·(|E(Q)|−1 + k(k−1)/2).
func ExpectedJoinOps(q *Query, k int) float64 {
	d := float64(DistinctEdgeTerms(q))
	m := float64(q.NumEdges())
	kk := float64(k)
	return (m - 1 + kk*(kk-1)/2) / d
}

// OrderByCost arranges picked into a prefix-connected join order that
// greedily minimizes estimated intermediate result sizes, where card
// supplies an (observed or estimated) match cardinality per subquery.
// It seeds with the connected pair of minimum cardinality product, then
// repeatedly appends the connected subquery of minimum cardinality —
// the runtime analogue of Section VI-C's joint-number heuristic, used
// by the adaptive reoptimizer where live statistics replace the static
// proxy. The paper notes selectivity estimation is infeasible a priori
// on streams; feeding back *observed* cardinalities is the natural
// extension it leaves open.
func OrderByCost(q *Query, picked []*TCSubquery, card func(*TCSubquery) float64) *Decomposition {
	if len(picked) <= 1 {
		return &Decomposition{Subqueries: append([]*TCSubquery(nil), picked...)}
	}
	rest := append([]*TCSubquery(nil), picked...)
	var ordered []*TCSubquery
	var unionMask uint64
	take := func(i int) {
		ordered = append(ordered, rest[i])
		unionMask |= rest[i].Mask
		rest = append(rest[:i], rest[i+1:]...)
	}

	bi, bj, best := -1, -1, 0.0
	for i := range rest {
		for j := i + 1; j < len(rest); j++ {
			if !masksConnected(q, rest[i].Mask, rest[j].Mask) {
				continue
			}
			c := card(rest[i]) * card(rest[j])
			if bi < 0 || c < best {
				best, bi, bj = c, i, j
			}
		}
	}
	if bi < 0 {
		bi, bj = firstConnectedPair(q, rest)
	}
	// Within the seed pair, put the smaller subquery first (it anchors
	// L0's first item).
	if card(rest[bi]) > card(rest[bj]) {
		bi, bj = bj, bi
	}
	if bi > bj {
		take(bi)
		take(bj)
	} else {
		take(bj) // take larger index first so the smaller index stays valid
		take(bi)
		ordered[0], ordered[1] = ordered[1], ordered[0]
	}

	for len(rest) > 0 {
		pick, bc := -1, 0.0
		for i, s := range rest {
			if !masksConnected(q, unionMask, s.Mask) {
				continue
			}
			if c := card(s); pick < 0 || c < bc {
				bc, pick = c, i
			}
		}
		if pick < 0 {
			pick = 0 // unreachable for connected queries; guarantee progress
		}
		take(pick)
	}
	return &Decomposition{Subqueries: ordered}
}

// EstimateOrderCost scores a join order under independence: the sum of
// estimated intermediate result sizes Π_{j≤i} card(Q_j) for each proper
// prefix i ∈ [2, k). Lower is better. Used to decide whether switching
// orders is worth an engine rebuild.
func EstimateOrderCost(d *Decomposition, card func(*TCSubquery) float64) float64 {
	cost, prod := 0.0, 1.0
	for i, s := range d.Subqueries {
		prod *= card(s)
		if i >= 1 && i < len(d.Subqueries)-1 {
			cost += prod
		}
	}
	return cost
}
