package query

import (
	"errors"
	"math/rand"
	"strings"
	"testing"

	"timingsubg/internal/graph"
)

// buildPaperQuery constructs the running example of Fig. 5.
func buildPaperQuery(t *testing.T) (*Query, *graph.Labels) {
	t.Helper()
	labels := graph.NewLabels()
	b := NewBuilder()
	va := b.AddVertex(labels.Intern("a"))
	vb := b.AddVertex(labels.Intern("b"))
	vc := b.AddVertex(labels.Intern("c"))
	vd := b.AddVertex(labels.Intern("d"))
	ve := b.AddVertex(labels.Intern("e"))
	vf := b.AddVertex(labels.Intern("f"))
	e1 := b.AddEdge(va, vb) // ε1
	b.AddEdge(vb, vc)       // ε2
	e3 := b.AddEdge(vd, vb) // ε3
	e4 := b.AddEdge(vd, vc) // ε4
	e5 := b.AddEdge(vc, ve) // ε5
	e6 := b.AddEdge(ve, vf) // ε6
	b.Before(e6, e3)
	b.Before(e3, e1)
	b.Before(e6, e5)
	b.Before(e5, e4)
	q, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return q, labels
}

func TestBuildValidation(t *testing.T) {
	labels := graph.NewLabels()
	l := labels.Intern("x")

	t.Run("empty", func(t *testing.T) {
		_, err := NewBuilder().Build()
		if !errors.Is(err, ErrEmptyQuery) {
			t.Errorf("want ErrEmptyQuery, got %v", err)
		}
	})
	t.Run("bad vertex", func(t *testing.T) {
		b := NewBuilder()
		b.AddVertex(l)
		b.AddEdge(0, 5)
		if _, err := b.Build(); !errors.Is(err, ErrBadVertex) {
			t.Errorf("want ErrBadVertex, got %v", err)
		}
	})
	t.Run("bad order edge", func(t *testing.T) {
		b := NewBuilder()
		u, v := b.AddVertex(l), b.AddVertex(l)
		b.AddEdge(u, v)
		b.Before(0, 7)
		if _, err := b.Build(); !errors.Is(err, ErrBadEdge) {
			t.Errorf("want ErrBadEdge, got %v", err)
		}
	})
	t.Run("self order", func(t *testing.T) {
		b := NewBuilder()
		u, v := b.AddVertex(l), b.AddVertex(l)
		e := b.AddEdge(u, v)
		b.Before(e, e)
		if _, err := b.Build(); !errors.Is(err, ErrSelfOrder) {
			t.Errorf("want ErrSelfOrder, got %v", err)
		}
	})
	t.Run("order cycle", func(t *testing.T) {
		b := NewBuilder()
		u, v, w := b.AddVertex(l), b.AddVertex(l), b.AddVertex(l)
		e1 := b.AddEdge(u, v)
		e2 := b.AddEdge(v, w)
		e3 := b.AddEdge(w, u)
		b.Before(e1, e2)
		b.Before(e2, e3)
		b.Before(e3, e1)
		if _, err := b.Build(); !errors.Is(err, ErrOrderCycle) {
			t.Errorf("want ErrOrderCycle, got %v", err)
		}
	})
	t.Run("disconnected", func(t *testing.T) {
		b := NewBuilder()
		a, bb, c, d := b.AddVertex(l), b.AddVertex(l), b.AddVertex(l), b.AddVertex(l)
		b.AddEdge(a, bb)
		b.AddEdge(c, d)
		if _, err := b.Build(); !errors.Is(err, ErrDisconnected) {
			t.Errorf("want ErrDisconnected, got %v", err)
		}
	})
}

func TestTransitiveClosure(t *testing.T) {
	q, _ := buildPaperQuery(t)
	// Direct: 5≺2, 2≺0, 5≺4, 4≺3 (ids: ε1=0, ε3=2, ε4=3, ε5=4, ε6=5).
	if !q.Precedes(5, 0) {
		t.Error("ε6 ≺ ε1 must hold by transitivity")
	}
	if !q.Precedes(5, 3) {
		t.Error("ε6 ≺ ε4 must hold by transitivity")
	}
	if q.Precedes(0, 5) {
		t.Error("closure must not invert pairs")
	}
	if q.Precedes(2, 4) || q.Precedes(4, 2) {
		t.Error("ε3 and ε5 are unordered")
	}
	if got := len(q.OrderPairs()); got != 8 {
		// 5≺2, 5≺0, 2≺0, 5≺4, 5≺3, 4≺3 plus... count: direct 4 pairs,
		// closure adds 5≺0 and 5≺3 → 6; plus nothing else. Recount below.
		t.Logf("order pairs: %v", q.OrderPairs())
		if got != 6 {
			t.Errorf("want 6 closed pairs, got %d", got)
		}
	}
}

func TestPreq(t *testing.T) {
	q, _ := buildPaperQuery(t)
	// Preq(ε1) = {ε1, ε3, ε6} = ids {0, 2, 5} (Fig. 6a).
	got := q.Preq(0)
	want := []EdgeID{0, 2, 5}
	if len(got) != len(want) {
		t.Fatalf("Preq(ε1): want %v, got %v", want, got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Preq(ε1): want %v, got %v", want, got)
		}
	}
	// Preq(ε4) = {ε4, ε5, ε6} = ids {3, 4, 5} (Fig. 6b).
	got = q.Preq(3)
	want = []EdgeID{3, 4, 5}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Preq(ε4): want %v, got %v", want, got)
		}
	}
}

func TestDiameter(t *testing.T) {
	labels := graph.NewLabels()
	l := labels.Intern("x")
	// Path of 4 vertices: diameter 3.
	b := NewBuilder()
	v := []VertexID{b.AddVertex(l), b.AddVertex(l), b.AddVertex(l), b.AddVertex(l)}
	b.AddEdge(v[0], v[1])
	b.AddEdge(v[1], v[2])
	b.AddEdge(v[2], v[3])
	q, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if q.Diameter() != 3 {
		t.Errorf("path diameter: want 3, got %d", q.Diameter())
	}
}

func TestMatchesData(t *testing.T) {
	labels := graph.NewLabels()
	la, lb := labels.Intern("a"), labels.Intern("b")
	lx := labels.Intern("edge-x")
	b := NewBuilder()
	u, v := b.AddVertex(la), b.AddVertex(lb)
	plain := b.AddEdge(u, v)
	tagged := b.AddLabeledEdge(v, u, lx)
	q, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	d := graph.Edge{FromLabel: la, ToLabel: lb}
	if !q.MatchesData(plain, d) {
		t.Error("unlabelled query edge must match by vertex labels")
	}
	if q.MatchesData(plain, graph.Edge{FromLabel: lb, ToLabel: la}) {
		t.Error("vertex labels must be direction sensitive")
	}
	rd := graph.Edge{FromLabel: lb, ToLabel: la, EdgeLabel: lx}
	if !q.MatchesData(tagged, rd) {
		t.Error("labelled query edge must match when edge label agrees")
	}
	rd.EdgeLabel = labels.Intern("other")
	if q.MatchesData(tagged, rd) {
		t.Error("labelled query edge must reject wrong edge labels")
	}
	// Unlabelled query edges ignore data edge labels.
	d.EdgeLabel = lx
	if !q.MatchesData(plain, d) {
		t.Error("unlabelled query edge must ignore data edge labels")
	}
}

func TestTCSubPaper(t *testing.T) {
	q, _ := buildPaperQuery(t)
	tcsub := TCSub(q)
	// The paper lists 10 TC-subqueries for the running example
	// (Section VI-B): {6,5,4}, {3,1}, {5,4}, {6,5}, {6,3}... — it lists
	// exactly: {6,5,4}, {3,1}, {5,4}, {6,5}, {1}..{6} singles. Also
	// {6,3}, {6,5,4}... The printed list has 10 entries; ours must
	// include all of them and every entry must verify as TC.
	masks := map[uint64]bool{}
	for _, s := range tcsub {
		if !IsTCSequence(q, s.Seq) {
			t.Errorf("enumerated non-TC sequence %v", s.Seq)
		}
		if masks[s.Mask] {
			t.Errorf("duplicate edge set %b", s.Mask)
		}
		masks[s.Mask] = true
	}
	mustHave := func(ids ...EdgeID) {
		var m uint64
		for _, id := range ids {
			m |= 1 << uint(id)
		}
		if !masks[m] {
			t.Errorf("TCsub must contain %v", ids)
		}
	}
	// Paper ids: ε1=0, ε2=1, ε3=2, ε4=3, ε5=4, ε6=5.
	mustHave(5, 4, 3) // {6,5,4}
	mustHave(2, 0)    // {3,1}
	mustHave(4, 3)    // {5,4}
	mustHave(5, 4)    // {6,5}
	for i := 0; i < 6; i++ {
		mustHave(EdgeID(i))
	}
}

func TestDecomposePaper(t *testing.T) {
	q, _ := buildPaperQuery(t)
	dec := Decompose(q)
	if !dec.CoversExactly(q) {
		t.Fatal("decomposition must exactly partition E(Q)")
	}
	if dec.K() != 3 {
		t.Fatalf("paper decomposition has k=3, got %d", dec.K())
	}
	// The greedy pick is {6,5,4}, {3,1}, {2} (Section VI-B).
	sizes := []int{}
	for _, s := range dec.Subqueries {
		sizes = append(sizes, s.Len())
	}
	total := 0
	has3, has2, has1 := false, false, false
	for _, s := range sizes {
		total += s
		switch s {
		case 3:
			has3 = true
		case 2:
			has2 = true
		case 1:
			has1 = true
		}
	}
	if total != 6 || !has3 || !has2 || !has1 {
		t.Errorf("want subquery sizes {3,2,1}, got %v", sizes)
	}
}

func TestDecomposeFullAndEmptyOrder(t *testing.T) {
	labels := graph.NewLabels()
	l := labels.Intern("x")
	// Path a→b→c→d with full order in path direction: k=1.
	b := NewBuilder()
	v := []VertexID{b.AddVertex(l), b.AddVertex(l), b.AddVertex(l), b.AddVertex(l)}
	e1 := b.AddEdge(v[0], v[1])
	e2 := b.AddEdge(v[1], v[2])
	e3 := b.AddEdge(v[2], v[3])
	b.Before(e1, e2)
	b.Before(e2, e3)
	q, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if k := Decompose(q).K(); k != 1 {
		t.Errorf("full path order: want k=1, got %d", k)
	}

	// Same path, empty order: k = |E|.
	b = NewBuilder()
	v = []VertexID{b.AddVertex(l), b.AddVertex(l), b.AddVertex(l), b.AddVertex(l)}
	b.AddEdge(v[0], v[1])
	b.AddEdge(v[1], v[2])
	b.AddEdge(v[2], v[3])
	q, err = b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if k := Decompose(q).K(); k != 3 {
		t.Errorf("empty order: want k=3, got %d", k)
	}
}

func TestDecomposeRandomValid(t *testing.T) {
	q, _ := buildPaperQuery(t)
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		dec := DecomposeRandom(q, rng, rng)
		if !dec.CoversExactly(q) {
			t.Fatalf("seed %d: random decomposition must partition E(Q)", seed)
		}
		for _, s := range dec.Subqueries {
			if !IsTCSequence(q, s.Seq) {
				t.Fatalf("seed %d: non-TC subquery %v", seed, s.Seq)
			}
		}
		assertPrefixConnected(t, q, dec)
	}
}

func TestDecomposeOrderedPrefixConnected(t *testing.T) {
	q, _ := buildPaperQuery(t)
	for seed := int64(0); seed < 10; seed++ {
		dec := DecomposeOrdered(q, rand.New(rand.NewSource(seed)))
		assertPrefixConnected(t, q, dec)
	}
	assertPrefixConnected(t, q, Decompose(q))
}

// assertPrefixConnected verifies the join-order invariant: every prefix
// of the decomposition induces a weakly connected subquery.
func assertPrefixConnected(t *testing.T, q *Query, dec *Decomposition) {
	t.Helper()
	var union uint64
	for i, s := range dec.Subqueries {
		if i > 0 && !masksConnected(q, union, s.Mask) {
			t.Fatalf("prefix %d is disconnected from subquery %d", i, i+1)
		}
		union |= s.Mask
	}
}

func TestJointNumber(t *testing.T) {
	q, _ := buildPaperQuery(t)
	dec := Decompose(q)
	// Joint number is symmetric.
	for i := range dec.Subqueries {
		for j := range dec.Subqueries {
			a := JointNumber(q, dec.Subqueries[i].Mask, dec.Subqueries[j].Mask)
			b := JointNumber(q, dec.Subqueries[j].Mask, dec.Subqueries[i].Mask)
			if a != b {
				t.Fatalf("JN must be symmetric: %d vs %d", a, b)
			}
		}
	}
}

func TestExpectedJoinOpsMonotone(t *testing.T) {
	q, _ := buildPaperQuery(t)
	prev := -1.0
	for k := 1; k <= q.NumEdges(); k++ {
		n := ExpectedJoinOps(q, k)
		if n <= prev {
			t.Fatalf("Theorem 7 cost must increase with k: N(%d)=%f, N(k-1)=%f", k, n, prev)
		}
		prev = n
	}
}

func TestLocate(t *testing.T) {
	q, _ := buildPaperQuery(t)
	dec := Decompose(q)
	seen := map[EdgeID]bool{}
	for e := 0; e < q.NumEdges(); e++ {
		s, p := dec.Locate(EdgeID(e))
		if s < 0 {
			t.Fatalf("edge %d not located", e)
		}
		if dec.Subqueries[s].Seq[p] != EdgeID(e) {
			t.Fatalf("Locate(%d) returned wrong position", e)
		}
		seen[EdgeID(e)] = true
	}
	if s, p := dec.Locate(EdgeID(99)); s != -1 || p != -1 {
		t.Error("Locate of unknown edge must return -1,-1")
	}
}

func TestParseWriteRoundTrip(t *testing.T) {
	q, labels := buildPaperQuery(t)
	var sb strings.Builder
	if err := Write(&sb, labels, q); err != nil {
		t.Fatal(err)
	}
	q2, err := Parse(strings.NewReader(sb.String()), labels)
	if err != nil {
		t.Fatalf("parse of written query: %v\n%s", err, sb.String())
	}
	if q2.NumVertices() != q.NumVertices() || q2.NumEdges() != q.NumEdges() {
		t.Fatal("round trip changed the query shape")
	}
	for i := 0; i < q.NumEdges(); i++ {
		for j := 0; j < q.NumEdges(); j++ {
			if q.Precedes(EdgeID(i), EdgeID(j)) != q2.Precedes(EdgeID(i), EdgeID(j)) {
				t.Fatalf("round trip changed the timing order at (%d,%d)", i, j)
			}
		}
	}
}

func TestParseErrors(t *testing.T) {
	labels := graph.NewLabels()
	cases := []string{
		"v 1 a",          // non-dense vertex id
		"v 0",            // missing label
		"e 0",            // missing endpoint
		"o 0 > 1",        // wrong operator
		"x whatever",     // unknown decl
		"e zero one",     // non-numeric
		"v 0 a\ne 0 1\n", // dangling endpoint (build error)
	}
	for _, c := range cases {
		if _, err := Parse(strings.NewReader(c), labels); err == nil {
			t.Errorf("Parse(%q) should fail", c)
		}
	}
}

func TestReducedOrder(t *testing.T) {
	labels := graph.NewLabels()
	l := labels.Intern("x")
	b := NewBuilder()
	v := []VertexID{b.AddVertex(l), b.AddVertex(l), b.AddVertex(l), b.AddVertex(l)}
	e1 := b.AddEdge(v[0], v[1])
	e2 := b.AddEdge(v[1], v[2])
	e3 := b.AddEdge(v[2], v[3])
	// Full closure given explicitly: reduction must recover the chain.
	b.Before(e1, e2)
	b.Before(e2, e3)
	b.Before(e1, e3) // redundant
	q, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	red := q.ReducedOrder()
	if len(red) != 2 {
		t.Fatalf("chain reduction: want 2 pairs, got %v", red)
	}
	for _, p := range red {
		if p == [2]EdgeID{e1, e3} {
			t.Error("transitive pair must be dropped")
		}
	}
	// Reduction closure equals the original closure.
	b2 := NewBuilder()
	v2 := []VertexID{b2.AddVertex(l), b2.AddVertex(l), b2.AddVertex(l), b2.AddVertex(l)}
	b2.AddEdge(v2[0], v2[1])
	b2.AddEdge(v2[1], v2[2])
	b2.AddEdge(v2[2], v2[3])
	for _, p := range red {
		b2.Before(p[0], p[1])
	}
	q2, err := b2.Build()
	if err != nil {
		t.Fatal(err)
	}
	for a := 0; a < q.NumEdges(); a++ {
		for c := 0; c < q.NumEdges(); c++ {
			if q.Precedes(EdgeID(a), EdgeID(c)) != q2.Precedes(EdgeID(a), EdgeID(c)) {
				t.Fatalf("reduction changed the closure at (%d,%d)", a, c)
			}
		}
	}
}

func TestOrderDensity(t *testing.T) {
	q, _ := buildPaperQuery(t)
	d := q.OrderDensity()
	if d <= 0 || d > 1 {
		t.Fatalf("density out of range: %f", d)
	}
	// Full order density is 1; empty is 0.
	labels := graph.NewLabels()
	l := labels.Intern("x")
	b := NewBuilder()
	u, v, w := b.AddVertex(l), b.AddVertex(l), b.AddVertex(l)
	e1 := b.AddEdge(u, v)
	e2 := b.AddEdge(v, w)
	b.Before(e1, e2)
	qq, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if qq.OrderDensity() != 1 {
		t.Errorf("two chained edges: density 1, got %f", qq.OrderDensity())
	}
	b = NewBuilder()
	u, v, w = b.AddVertex(l), b.AddVertex(l), b.AddVertex(l)
	b.AddEdge(u, v)
	b.AddEdge(v, w)
	qq, err = b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if qq.OrderDensity() != 0 {
		t.Errorf("no order: density 0, got %f", qq.OrderDensity())
	}
}
