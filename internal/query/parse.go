package query

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"timingsubg/internal/graph"
)

// The query text format, one declaration per line:
//
//	v <id> <label>            vertex (ids must be dense, 0-based, in order)
//	e <from> <to> [label]     directed edge (edge ids assigned in order)
//	o <a> < <b>               timing order: edge a before edge b
//	# ...                     comment
//
// Example (the cyber-attack pattern of Fig. 1):
//
//	v 0 IP
//	v 1 IP
//	v 2 IP
//	e 0 1 http
//	e 1 0 http
//	e 0 2 tcp
//	e 2 0 tcp
//	e 0 2 large-msg
//	o 0 < 1
//	o 1 < 2
//	o 2 < 3
//	o 3 < 4

// Write serializes q in the text format, resolving labels through the
// given table.
func Write(w io.Writer, labels *graph.Labels, q *Query) error {
	bw := bufio.NewWriter(w)
	for v := 0; v < q.NumVertices(); v++ {
		if _, err := fmt.Fprintf(bw, "v %d %s\n", v, labels.String(q.VertexLabel(VertexID(v)))); err != nil {
			return err
		}
	}
	for _, e := range q.Edges() {
		if e.Label == graph.NoLabel {
			if _, err := fmt.Fprintf(bw, "e %d %d\n", e.From, e.To); err != nil {
				return err
			}
		} else {
			if _, err := fmt.Fprintf(bw, "e %d %d %s\n", e.From, e.To, labels.String(e.Label)); err != nil {
				return err
			}
		}
	}
	for _, p := range q.DirectOrders() {
		if _, err := fmt.Fprintf(bw, "o %d < %d\n", p[0], p[1]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Parse reads the text format and builds the query, interning labels.
func Parse(r io.Reader, labels *graph.Labels) (*Query, error) {
	b := NewBuilder()
	sc := bufio.NewScanner(r)
	line := 0
	nv := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		switch fields[0] {
		case "v":
			if len(fields) != 3 {
				return nil, fmt.Errorf("query: line %d: want 'v <id> <label>'", line)
			}
			id, err := strconv.Atoi(fields[1])
			if err != nil || id != nv {
				return nil, fmt.Errorf("query: line %d: vertex ids must be dense and in order (want %d)", line, nv)
			}
			b.AddVertex(labels.Intern(fields[2]))
			nv++
		case "e":
			if len(fields) != 3 && len(fields) != 4 {
				return nil, fmt.Errorf("query: line %d: want 'e <from> <to> [label]'", line)
			}
			from, err1 := strconv.Atoi(fields[1])
			to, err2 := strconv.Atoi(fields[2])
			if err1 != nil || err2 != nil {
				return nil, fmt.Errorf("query: line %d: bad edge endpoints", line)
			}
			lbl := graph.NoLabel
			if len(fields) == 4 {
				lbl = labels.Intern(fields[3])
			}
			b.AddLabeledEdge(VertexID(from), VertexID(to), lbl)
		case "o":
			if len(fields) != 4 || fields[2] != "<" {
				return nil, fmt.Errorf("query: line %d: want 'o <a> < <b>'", line)
			}
			a, err1 := strconv.Atoi(fields[1])
			c, err2 := strconv.Atoi(fields[3])
			if err1 != nil || err2 != nil {
				return nil, fmt.Errorf("query: line %d: bad order edge ids", line)
			}
			b.Before(EdgeID(a), EdgeID(c))
		default:
			return nil, fmt.Errorf("query: line %d: unknown declaration %q", line, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return b.Build()
}
