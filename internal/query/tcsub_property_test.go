package query

import (
	"math/rand"
	"testing"
	"testing/quick"

	"timingsubg/internal/graph"
)

// randomQuery builds a random weakly connected query with m edges over a
// small label alphabet and a random acyclic timing order.
func randomQuery(rng *rand.Rand, m int) *Query {
	labels := []graph.Label{1, 2, 3}
	b := NewBuilder()
	n := 2 + rng.Intn(m) // vertices
	for i := 0; i < n; i++ {
		b.AddVertex(labels[rng.Intn(len(labels))])
	}
	// First, a random spanning path over vertices to force connectivity,
	// then random extra edges.
	perm := rng.Perm(n)
	added := 0
	for i := 0; i+1 < n && added < m; i++ {
		b.AddEdge(VertexID(perm[i]), VertexID(perm[i+1]))
		added++
	}
	for added < m {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v {
			continue
		}
		b.AddEdge(VertexID(u), VertexID(v))
		added++
	}
	// Random order pairs respecting a random topological permutation so
	// ≺ stays acyclic.
	topo := rng.Perm(m)
	for i := 0; i < m; i++ {
		for j := i + 1; j < m; j++ {
			if rng.Intn(3) == 0 {
				b.Before(EdgeID(topo[i]), EdgeID(topo[j]))
			}
		}
	}
	q, err := b.Build()
	if err != nil {
		return nil
	}
	return q
}

// bruteTCMasks enumerates all TC-subquery edge sets by brute force over
// all permutations of all subsets — an independent oracle for TCSub's
// dynamic program (only feasible for small m).
func bruteTCMasks(q *Query) map[uint64]bool {
	m := q.NumEdges()
	out := make(map[uint64]bool)
	var edges []EdgeID
	for i := 0; i < m; i++ {
		edges = append(edges, EdgeID(i))
	}
	var permute func(seq []EdgeID, rest []EdgeID)
	permute = func(seq, rest []EdgeID) {
		if len(seq) > 0 && IsTCSequence(q, seq) {
			var mask uint64
			for _, e := range seq {
				mask |= 1 << uint(e)
			}
			out[mask] = true
		}
		// Prefixes of TC sequences are TC sequences, so pruning on
		// failure is sound; but keep it simple and only extend valid
		// prefixes.
		if len(seq) > 0 && !IsTCSequence(q, seq) {
			return
		}
		for i, e := range rest {
			next := append(append([]EdgeID{}, seq...), e)
			remaining := append(append([]EdgeID{}, rest[:i]...), rest[i+1:]...)
			permute(next, remaining)
		}
	}
	permute(nil, edges)
	return out
}

// TestTCSubMatchesBruteForce cross-checks the DP enumeration against the
// brute-force oracle on random queries.
func TestTCSubMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 60; trial++ {
		m := 2 + rng.Intn(4) // 2..5 edges: brute force stays cheap
		q := randomQuery(rng, m)
		if q == nil {
			continue
		}
		want := bruteTCMasks(q)
		got := map[uint64]bool{}
		for _, s := range TCSub(q) {
			if !IsTCSequence(q, s.Seq) {
				t.Fatalf("trial %d: TCSub emitted invalid sequence %v", trial, s.Seq)
			}
			got[s.Mask] = true
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d (m=%d): DP found %d edge sets, brute force %d\norders: %v",
				trial, m, len(got), len(want), q.OrderPairs())
		}
		for mask := range want {
			if !got[mask] {
				t.Fatalf("trial %d: DP missed edge set %b", trial, mask)
			}
		}
	}
}

// TestDecomposePropertyRandomQueries property-checks that every
// decomposition variant partitions E(Q) into valid TC-subqueries with a
// prefix-connected join order.
func TestDecomposePropertyRandomQueries(t *testing.T) {
	f := func(seed int64, mRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 2 + int(mRaw%5)
		q := randomQuery(rng, m)
		if q == nil {
			return true // builder rejected (e.g. disconnected); fine
		}
		for _, dec := range []*Decomposition{
			Decompose(q),
			DecomposeRandom(q, rng, rng),
			DecomposeOrdered(q, rng),
		} {
			if !dec.CoversExactly(q) {
				return false
			}
			var union uint64
			for i, s := range dec.Subqueries {
				if !IsTCSequence(q, s.Seq) {
					return false
				}
				if i > 0 && !masksConnected(q, union, s.Mask) {
					return false
				}
				union |= s.Mask
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// TestGreedyNeverWorseThanRandom verifies the cost-model preference:
// Algorithm 6's greedy decomposition is never larger than a random one.
func TestGreedyNeverWorseThanRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 40; trial++ {
		q := randomQuery(rng, 3+rng.Intn(4))
		if q == nil {
			continue
		}
		greedy := Decompose(q).K()
		for r := 0; r < 5; r++ {
			random := DecomposeRandom(q, rng, nil).K()
			if greedy > random {
				t.Fatalf("trial %d: greedy k=%d worse than random k=%d", trial, greedy, random)
			}
		}
	}
}
