// Package query models continuous query graphs with timing-order
// constraints (Definition 3) and implements the paper's query-compilation
// machinery: prefix-connected sequences (Definition 7), TC-subquery
// enumeration (Algorithm 5), cost-model-guided TC decomposition
// (Algorithm 6, Theorem 7) and joint-number join ordering (Definition 12).
package query

import (
	"errors"
	"fmt"
	"sort"

	"timingsubg/internal/graph"
)

// VertexID identifies a query vertex; vertices are densely numbered
// 0..NumVertices-1 in creation order.
type VertexID int

// EdgeID identifies a query edge; edges are densely numbered
// 0..NumEdges-1 in creation order.
type EdgeID int

// Edge is a directed query edge From→To with an optional edge label.
type Edge struct {
	ID       EdgeID
	From, To VertexID
	Label    graph.Label
}

// Query is a continuous query graph: vertices with labels, directed
// edges, and a strict partial order ≺ over edges (the timing order).
// Build one with NewBuilder; a built Query is immutable and safe for
// concurrent use.
type Query struct {
	vlabels []graph.Label
	edges   []Edge
	// prec[i][j] == true means εi ≺ εj in the transitive closure.
	prec [][]bool
	// direct holds the user-specified (non-closed) order pairs.
	direct [][2]EdgeID
	// adjacency between edges: edgeAdj[i][j] == true iff εi and εj share
	// an endpoint. Used heavily by the TC machinery.
	edgeAdj [][]bool
	// touching[v] lists edges adjacent to vertex v.
	touching [][]EdgeID
	diameter int
}

// Builder assembles a Query. Zero value is not usable; use NewBuilder.
type Builder struct {
	vlabels []graph.Label
	edges   []Edge
	orders  [][2]EdgeID
}

// NewBuilder returns an empty query builder.
func NewBuilder() *Builder { return &Builder{} }

// AddVertex adds a vertex with the given label and returns its ID.
func (b *Builder) AddVertex(label graph.Label) VertexID {
	b.vlabels = append(b.vlabels, label)
	return VertexID(len(b.vlabels) - 1)
}

// AddEdge adds a directed edge u→v with no edge label and returns its ID.
func (b *Builder) AddEdge(u, v VertexID) EdgeID {
	return b.AddLabeledEdge(u, v, graph.NoLabel)
}

// AddLabeledEdge adds a directed edge u→v carrying an edge label.
func (b *Builder) AddLabeledEdge(u, v VertexID, label graph.Label) EdgeID {
	id := EdgeID(len(b.edges))
	b.edges = append(b.edges, Edge{ID: id, From: u, To: v, Label: label})
	return id
}

// Before records the timing constraint a ≺ b: in any match, the data edge
// matching a must arrive before the data edge matching b.
func (b *Builder) Before(a, bID EdgeID) {
	b.orders = append(b.orders, [2]EdgeID{a, bID})
}

// Errors returned by Build.
var (
	ErrEmptyQuery      = errors.New("query: query has no edges")
	ErrBadVertex       = errors.New("query: edge references unknown vertex")
	ErrBadEdge         = errors.New("query: timing order references unknown edge")
	ErrOrderCycle      = errors.New("query: timing order contains a cycle")
	ErrDisconnected    = errors.New("query: query graph must be weakly connected")
	ErrSelfOrder       = errors.New("query: edge cannot precede itself")
	ErrDuplicateVertex = errors.New("query: duplicate endpoints on an edge pair require distinct data edges; parallel identical edges are not supported")
)

// Build validates the query and computes derived structures (transitive
// closure of ≺, edge adjacency, diameter). The query graph must be weakly
// connected and ≺ must be acyclic.
func (b *Builder) Build() (*Query, error) {
	if len(b.edges) == 0 {
		return nil, ErrEmptyQuery
	}
	n := len(b.vlabels)
	m := len(b.edges)
	for _, e := range b.edges {
		if int(e.From) >= n || int(e.To) >= n || e.From < 0 || e.To < 0 {
			return nil, fmt.Errorf("%w: edge %d (%d→%d)", ErrBadVertex, e.ID, e.From, e.To)
		}
	}
	for _, p := range b.orders {
		if int(p[0]) >= m || int(p[1]) >= m || p[0] < 0 || p[1] < 0 {
			return nil, fmt.Errorf("%w: %d ≺ %d", ErrBadEdge, p[0], p[1])
		}
		if p[0] == p[1] {
			return nil, fmt.Errorf("%w: edge %d", ErrSelfOrder, p[0])
		}
	}
	q := &Query{
		vlabels: append([]graph.Label(nil), b.vlabels...),
		edges:   append([]Edge(nil), b.edges...),
		direct:  append([][2]EdgeID(nil), b.orders...),
	}
	if err := q.closeOrder(); err != nil {
		return nil, err
	}
	q.buildAdjacency()
	if !q.weaklyConnected() {
		return nil, ErrDisconnected
	}
	q.diameter = q.computeDiameter()
	return q, nil
}

// closeOrder computes the transitive closure of the timing order and
// rejects cycles.
func (q *Query) closeOrder() error {
	m := len(q.edges)
	q.prec = make([][]bool, m)
	for i := range q.prec {
		q.prec[i] = make([]bool, m)
	}
	for _, p := range q.direct {
		q.prec[p[0]][p[1]] = true
	}
	// Floyd-Warshall style closure; m ≤ ~21 in all workloads.
	for k := 0; k < m; k++ {
		for i := 0; i < m; i++ {
			if !q.prec[i][k] {
				continue
			}
			for j := 0; j < m; j++ {
				if q.prec[k][j] {
					q.prec[i][j] = true
				}
			}
		}
	}
	for i := 0; i < m; i++ {
		if q.prec[i][i] {
			return ErrOrderCycle
		}
	}
	return nil
}

func (q *Query) buildAdjacency() {
	m := len(q.edges)
	q.edgeAdj = make([][]bool, m)
	for i := range q.edgeAdj {
		q.edgeAdj[i] = make([]bool, m)
	}
	q.touching = make([][]EdgeID, len(q.vlabels))
	for _, e := range q.edges {
		q.touching[e.From] = append(q.touching[e.From], e.ID)
		if e.To != e.From {
			q.touching[e.To] = append(q.touching[e.To], e.ID)
		}
	}
	for i := 0; i < m; i++ {
		for j := i + 1; j < m; j++ {
			if q.sharesVertex(EdgeID(i), EdgeID(j)) {
				q.edgeAdj[i][j] = true
				q.edgeAdj[j][i] = true
			}
		}
	}
}

func (q *Query) sharesVertex(a, b EdgeID) bool {
	ea, eb := q.edges[a], q.edges[b]
	return ea.From == eb.From || ea.From == eb.To || ea.To == eb.From || ea.To == eb.To
}

func (q *Query) weaklyConnected() bool {
	if len(q.edges) == 0 {
		return false
	}
	seen := make([]bool, len(q.edges))
	stack := []EdgeID{0}
	seen[0] = true
	cnt := 1
	for len(stack) > 0 {
		e := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for j := 0; j < len(q.edges); j++ {
			if !seen[j] && q.edgeAdj[e][j] {
				seen[j] = true
				cnt++
				stack = append(stack, EdgeID(j))
			}
		}
	}
	return cnt == len(q.edges)
}

// computeDiameter returns the diameter of the query graph viewed as an
// undirected graph over vertices (longest shortest path). IncMat uses it
// to bound the affected area of an update.
func (q *Query) computeDiameter() int {
	n := len(q.vlabels)
	const inf = 1 << 30
	dist := make([][]int, n)
	for i := range dist {
		dist[i] = make([]int, n)
		for j := range dist[i] {
			if i != j {
				dist[i][j] = inf
			}
		}
	}
	for _, e := range q.edges {
		dist[e.From][e.To] = 1
		dist[e.To][e.From] = 1
	}
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if dist[i][k]+dist[k][j] < dist[i][j] {
					dist[i][j] = dist[i][k] + dist[k][j]
				}
			}
		}
	}
	d := 0
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if dist[i][j] < inf && dist[i][j] > d {
				d = dist[i][j]
			}
		}
	}
	return d
}

// NumVertices returns the number of query vertices.
func (q *Query) NumVertices() int { return len(q.vlabels) }

// NumEdges returns the number of query edges.
func (q *Query) NumEdges() int { return len(q.edges) }

// VertexLabel returns the label of query vertex v.
func (q *Query) VertexLabel(v VertexID) graph.Label { return q.vlabels[v] }

// Edge returns the query edge with the given ID.
func (q *Query) Edge(id EdgeID) Edge { return q.edges[id] }

// Edges returns all query edges in ID order. The returned slice is shared;
// callers must not modify it.
func (q *Query) Edges() []Edge { return q.edges }

// Precedes reports whether a ≺ b holds in the transitive closure.
func (q *Query) Precedes(a, b EdgeID) bool { return q.prec[a][b] }

// DirectOrders returns the user-specified order pairs (not the closure).
func (q *Query) DirectOrders() [][2]EdgeID { return q.direct }

// OrderPairs returns every pair (a, b) with a ≺ b in the closure, in a
// deterministic order.
func (q *Query) OrderPairs() [][2]EdgeID {
	var out [][2]EdgeID
	for i := range q.prec {
		for j := range q.prec[i] {
			if q.prec[i][j] {
				out = append(out, [2]EdgeID{EdgeID(i), EdgeID(j)})
			}
		}
	}
	return out
}

// EdgesAdjacent reports whether query edges a and b share an endpoint.
func (q *Query) EdgesAdjacent(a, b EdgeID) bool { return q.edgeAdj[a][b] }

// Touching returns the edges adjacent to query vertex v.
func (q *Query) Touching(v VertexID) []EdgeID { return q.touching[v] }

// Diameter returns the undirected diameter of the query graph.
func (q *Query) Diameter() int { return q.diameter }

// Preq returns Preq(ε): the prerequisite edge set {ε' : ε' ≺ ε} ∪ {ε}
// (Definition 6), sorted by edge ID.
func (q *Query) Preq(e EdgeID) []EdgeID {
	out := []EdgeID{e}
	for i := 0; i < len(q.edges); i++ {
		if q.prec[i][e] {
			out = append(out, EdgeID(i))
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// MatchesData reports whether data edge d can match query edge id:
// endpoint labels and (when the query edge is labelled) edge labels must
// agree. Unlabelled query edges match any data edge label, which lets
// vertex-labelled-only workloads ignore edge labels entirely.
func (q *Query) MatchesData(id EdgeID, d graph.Edge) bool {
	e := q.edges[id]
	if q.vlabels[e.From] != d.FromLabel || q.vlabels[e.To] != d.ToLabel {
		return false
	}
	return e.Label == graph.NoLabel || e.Label == d.EdgeLabel
}

// MatchingEdges returns the query edges that data edge d can match, in ID
// order.
func (q *Query) MatchingEdges(d graph.Edge) []EdgeID {
	return q.MatchingEdgesInto(d, nil)
}

// MatchingEdgesInto is MatchingEdges appending into buf[:0], so per-edge
// hot paths can reuse one buffer across calls.
func (q *Query) MatchingEdgesInto(d graph.Edge, buf []EdgeID) []EdgeID {
	out := buf[:0]
	for i := range q.edges {
		if q.MatchesData(EdgeID(i), d) {
			out = append(out, EdgeID(i))
		}
	}
	return out
}
