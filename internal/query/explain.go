package query

import (
	"fmt"
	"io"
	"strings"

	"timingsubg/internal/graph"
)

// Explain writes a human-readable description of a query and its TC
// decomposition: vertices, edges, the direct timing order, each
// TC-subquery's timing sequence with its expansion-list items, and the
// Theorem 7 cost-model value for the chosen k.
func Explain(w io.Writer, labels *graph.Labels, q *Query, dec *Decomposition) {
	fmt.Fprintf(w, "query: %d vertices, %d edges, diameter %d\n",
		q.NumVertices(), q.NumEdges(), q.Diameter())
	for v := 0; v < q.NumVertices(); v++ {
		fmt.Fprintf(w, "  v%d  label=%s\n", v, labelStr(labels, q.VertexLabel(VertexID(v))))
	}
	for _, e := range q.Edges() {
		lbl := ""
		if e.Label != graph.NoLabel {
			lbl = " [" + labelStr(labels, e.Label) + "]"
		}
		fmt.Fprintf(w, "  ε%d  v%d→v%d%s\n", e.ID, e.From, e.To, lbl)
	}
	if pairs := q.DirectOrders(); len(pairs) > 0 {
		parts := make([]string, len(pairs))
		for i, p := range pairs {
			parts[i] = fmt.Sprintf("ε%d ≺ ε%d", p[0], p[1])
		}
		fmt.Fprintf(w, "timing order: %s\n", strings.Join(parts, ", "))
	} else {
		fmt.Fprintln(w, "timing order: (none)")
	}

	fmt.Fprintf(w, "decomposition: k=%d (expected joins/edge per Theorem 7: %.3f)\n",
		dec.K(), ExpectedJoinOps(q, dec.K()))
	for i, sub := range dec.Subqueries {
		seq := make([]string, len(sub.Seq))
		for j, e := range sub.Seq {
			seq[j] = fmt.Sprintf("ε%d", e)
		}
		fmt.Fprintf(w, "  Q%d: timing sequence %s\n", i+1, strings.Join(seq, " ≺ "))
		for j := range sub.Seq {
			items := make([]string, j+1)
			for x := 0; x <= j; x++ {
				items[x] = fmt.Sprintf("ε%d", sub.Seq[x])
			}
			fmt.Fprintf(w, "    L%d^%d stores Ω({%s})\n", i+1, j+1, strings.Join(items, ","))
		}
	}
	if dec.K() > 1 {
		fmt.Fprintln(w, "  L0: global expansion list over the join order above")
		fmt.Fprintf(w, "    L0^1 aliases L1^%d\n", dec.Subqueries[0].Len())
		for i := 2; i <= dec.K(); i++ {
			fmt.Fprintf(w, "    L0^%d stores Ω(Q1∪…∪Q%d)\n", i, i)
		}
	}
}

func labelStr(labels *graph.Labels, l graph.Label) string {
	if labels == nil {
		return fmt.Sprintf("#%d", int32(l))
	}
	return labels.String(l)
}
