package query

// ReducedOrder returns the transitive reduction of the timing order: the
// minimal set of pairs whose closure equals ≺. Explain output and query
// files stay readable when generators emit the full closure (the paper's
// Section VII-B generator produces O(m²) pairs whose reduction is much
// smaller).
func (q *Query) ReducedOrder() [][2]EdgeID {
	m := q.NumEdges()
	var out [][2]EdgeID
	for a := 0; a < m; a++ {
		for b := 0; b < m; b++ {
			if !q.prec[a][b] {
				continue
			}
			// (a, b) is redundant if some c with a ≺ c ≺ b exists.
			redundant := false
			for c := 0; c < m && !redundant; c++ {
				if c != a && c != b && q.prec[a][c] && q.prec[c][b] {
					redundant = true
				}
			}
			if !redundant {
				out = append(out, [2]EdgeID{EdgeID(a), EdgeID(b)})
			}
		}
	}
	return out
}

// OrderDensity reports |≺| (closure pairs) over the maximum m(m−1)/2,
// the paper's informal spectrum from empty order (0) to full order (1).
func (q *Query) OrderDensity() float64 {
	m := q.NumEdges()
	if m < 2 {
		return 0
	}
	n := 0
	for a := 0; a < m; a++ {
		for b := 0; b < m; b++ {
			if q.prec[a][b] {
				n++
			}
		}
	}
	return float64(n) / float64(m*(m-1)/2)
}
