package query

import (
	"strings"
	"testing"

	"timingsubg/internal/graph"
)

// FuzzParse hardens the query text parser: arbitrary input must either
// parse into a valid query or return an error — never panic — and a
// successful parse must round-trip through Write.
func FuzzParse(f *testing.F) {
	f.Add("v 0 a\nv 1 b\ne 0 1\n")
	f.Add("v 0 a\nv 1 b\ne 0 1 lbl\ne 1 0\no 0 < 1\n")
	f.Add("# comment\n\nv 0 x\n")
	f.Add("e 0 0\n")
	f.Add("o 0 < 0\n")
	f.Add("v 0 a\nv 9999999999 b\n")
	f.Fuzz(func(t *testing.T, input string) {
		labels := graph.NewLabels()
		q, err := Parse(strings.NewReader(input), labels)
		if err != nil {
			return
		}
		// A parsed query must be internally consistent.
		if q.NumEdges() == 0 {
			t.Fatal("parser returned an empty query without error")
		}
		var sb strings.Builder
		if err := Write(&sb, labels, q); err != nil {
			t.Fatalf("write of parsed query failed: %v", err)
		}
		q2, err := Parse(strings.NewReader(sb.String()), labels)
		if err != nil {
			t.Fatalf("round trip failed: %v\n%s", err, sb.String())
		}
		if q2.NumEdges() != q.NumEdges() || q2.NumVertices() != q.NumVertices() {
			t.Fatal("round trip changed the query")
		}
	})
}
