package query

import (
	"math/bits"
	"sort"
)

// TCSubquery is a timing-connected subquery of a query Q (Definition 8):
// a sequence of query edges ε1,...,εk such that εj ≺ εj+1 for consecutive
// edges and every prefix is weakly connected. Seq is the timing sequence;
// Mask is the bitmask of member edge IDs.
type TCSubquery struct {
	Seq  []EdgeID
	Mask uint64
}

// Len returns the number of edges in the subquery.
func (t *TCSubquery) Len() int { return len(t.Seq) }

// Contains reports whether the subquery contains edge e.
func (t *TCSubquery) Contains(e EdgeID) bool { return t.Mask&(1<<uint(e)) != 0 }

// Pos returns the 0-based position of e in the timing sequence, or -1.
func (t *TCSubquery) Pos(e EdgeID) int {
	for i, x := range t.Seq {
		if x == e {
			return i
		}
	}
	return -1
}

// ConnectingVertex returns the query vertex shared between the pos-th
// sequence edge (1-based, pos ≥ 2) and its prefix {ε₁..ε_{pos−1}},
// together with whether that vertex is the From endpoint of the pos-th
// edge. Prefix connectivity (Definition 7) guarantees such a vertex
// exists; when both endpoints touch the prefix, From wins
// deterministically. A stored match of the prefix binds every prefix
// vertex, so an incoming data edge can only extend prefixes whose
// binding of the connecting vertex equals the data edge's corresponding
// endpoint — the key the engine's vertex join indexes probe by.
// ok is false for pos ≤ 1 (the first sequence edge has no prefix).
func (t *TCSubquery) ConnectingVertex(q *Query, pos int) (v VertexID, useFrom bool, ok bool) {
	if pos <= 1 || pos > len(t.Seq) {
		return 0, false, false
	}
	e := q.Edge(t.Seq[pos-1])
	for _, pe := range t.Seq[:pos-1] {
		p := q.Edge(pe)
		if p.From == e.From || p.To == e.From {
			return e.From, true, true
		}
	}
	for _, pe := range t.Seq[:pos-1] {
		p := q.Edge(pe)
		if p.From == e.To || p.To == e.To {
			return e.To, false, true
		}
	}
	panic("query: timing sequence prefix is not connected")
}

// BindingSource locates, within the subquery, where a match of the
// prefix {ε₁..ε_maxPos} binds query vertex v: the smallest 1-based
// sequence position whose edge touches v, and whether v is that edge's
// From endpoint. ok is false when no edge of the prefix touches v.
// Storage backends use it to extract index keys from stored paths
// without materializing the match.
func (t *TCSubquery) BindingSource(q *Query, v VertexID, maxPos int) (pos int, isFrom bool, ok bool) {
	if maxPos > len(t.Seq) {
		maxPos = len(t.Seq)
	}
	for j := 0; j < maxPos; j++ {
		e := q.Edge(t.Seq[j])
		if e.From == v {
			return j + 1, true, true
		}
		if e.To == v {
			return j + 1, false, true
		}
	}
	return 0, false, false
}

// MaxQueryEdges bounds the number of edges a query may have for the TC
// machinery, which uses 64-bit edge masks.
const MaxQueryEdges = 64

// TCSub enumerates TCsub(Q), the set of all TC-subqueries of q
// (Algorithm 5). Rather than materializing every timing sequence — which
// explodes when ≺ is close to a total order — it runs the same expansion
// over (edge-set, feasible-last-edges) states, which is equivalent for
// decomposition purposes, and reconstructs one witness sequence per edge
// set. The result is sorted by size descending, then by mask for
// determinism.
func TCSub(q *Query) []*TCSubquery {
	m := q.NumEdges()
	if m > MaxQueryEdges {
		panic("query: too many edges for TC enumeration")
	}
	// lasts[mask] = bitmask of edges that can appear last in some timing
	// sequence realizing this edge set.
	lasts := make(map[uint64]uint64, 2*m)
	queue := make([]uint64, 0, 2*m)
	for e := 0; e < m; e++ {
		mask := uint64(1) << uint(e)
		lasts[mask] = mask
		queue = append(queue, mask)
	}
	for len(queue) > 0 {
		mask := queue[0]
		queue = queue[1:]
		last := lasts[mask]
		for x := 0; x < m; x++ {
			xb := uint64(1) << uint(x)
			if mask&xb != 0 {
				continue
			}
			if !adjacentToMask(q, EdgeID(x), mask) {
				continue
			}
			// Some feasible last t must satisfy t ≺ x.
			ok := false
			for t := 0; t < m && !ok; t++ {
				if last&(1<<uint(t)) != 0 && q.Precedes(EdgeID(t), EdgeID(x)) {
					ok = true
				}
			}
			if !ok {
				continue
			}
			nm := mask | xb
			prev, seen := lasts[nm]
			if prev&xb != 0 {
				continue // x already known feasible as last for nm
			}
			lasts[nm] = prev | xb
			if !seen {
				queue = append(queue, nm)
			} else {
				// New feasible last for an existing set: re-expand so
				// extensions enabled only by x are discovered.
				queue = append(queue, nm)
			}
		}
	}
	out := make([]*TCSubquery, 0, len(lasts))
	for mask := range lasts {
		out = append(out, &TCSubquery{Seq: reconstructSeq(q, lasts, mask), Mask: mask})
	}
	sort.Slice(out, func(i, j int) bool {
		pi, pj := bits.OnesCount64(out[i].Mask), bits.OnesCount64(out[j].Mask)
		if pi != pj {
			return pi > pj
		}
		return out[i].Mask < out[j].Mask
	})
	return out
}

// adjacentToMask reports whether edge x shares a vertex with any edge in
// mask.
func adjacentToMask(q *Query, x EdgeID, mask uint64) bool {
	for e := 0; mask != 0; e++ {
		if mask&1 != 0 && q.EdgesAdjacent(x, EdgeID(e)) {
			return true
		}
		mask >>= 1
	}
	return false
}

// reconstructSeq rebuilds one valid timing sequence for the edge set mask
// using the feasible-last table. It peels edges from the back: an edge x
// can be last if it is feasible-last for mask and mask\{x} retains a
// feasible last t with t ≺ x (and stays valid in the table).
func reconstructSeq(q *Query, lasts map[uint64]uint64, mask uint64) []EdgeID {
	k := bits.OnesCount64(mask)
	seq := make([]EdgeID, k)
	cur := mask
	for i := k - 1; i >= 0; i-- {
		feas := lasts[cur]
		placed := false
		for x := 0; x < MaxQueryEdges && !placed; x++ {
			xb := uint64(1) << uint(x)
			if feas&xb == 0 {
				continue
			}
			if i == 0 {
				seq[0] = EdgeID(x)
				placed = true
				break
			}
			rest := cur &^ xb
			restLast, ok := lasts[rest]
			if !ok {
				continue
			}
			// x must be preceded by some feasible last of rest, and x must
			// attach to rest structurally.
			if !adjacentToMask(q, EdgeID(x), rest) {
				continue
			}
			for t := 0; t < MaxQueryEdges; t++ {
				if restLast&(1<<uint(t)) != 0 && q.Precedes(EdgeID(t), EdgeID(x)) {
					seq[i] = EdgeID(x)
					cur = rest
					placed = true
					break
				}
			}
		}
		if !placed {
			// The table guarantees a witness exists; reaching here would
			// indicate a bug in the DP.
			panic("query: failed to reconstruct TC sequence")
		}
	}
	return seq
}

// IsTCSequence verifies that seq is a valid timing sequence over q:
// consecutive edges ordered by ≺ and every prefix weakly connected. It is
// the independent checker used by tests.
func IsTCSequence(q *Query, seq []EdgeID) bool {
	if len(seq) == 0 {
		return false
	}
	seen := make(map[EdgeID]bool, len(seq))
	var mask uint64
	for i, e := range seq {
		if seen[e] {
			return false
		}
		seen[e] = true
		if i > 0 {
			if !q.Precedes(seq[i-1], e) {
				return false
			}
			if !adjacentToMask(q, e, mask) {
				return false
			}
		}
		mask |= 1 << uint(e)
	}
	return true
}
