package graph

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestCountStreamBasics(t *testing.T) {
	s := NewCountStream(3)
	if s.N() != 3 || s.Len() != 0 || s.Seen() != 0 {
		t.Fatalf("fresh stream: N=%d Len=%d Seen=%d", s.N(), s.Len(), s.Seen())
	}
	for i := 1; i <= 3; i++ {
		stored, expired, err := s.Push(Edge{From: VertexID(i), Time: Timestamp(i)})
		if err != nil {
			t.Fatal(err)
		}
		if stored.ID != EdgeID(i-1) {
			t.Fatalf("edge %d got ID %d", i, stored.ID)
		}
		if len(expired) != 0 {
			t.Fatalf("premature expiry at %d", i)
		}
	}
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3", s.Len())
	}
	// Fourth push must expire exactly the oldest.
	_, expired, err := s.Push(Edge{From: 4, Time: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(expired) != 1 || expired[0].ID != 0 {
		t.Fatalf("expired %v, want exactly edge 0", expired)
	}
	if s.Len() != 3 {
		t.Fatalf("Len after slide = %d, want 3", s.Len())
	}
	in := s.InWindow()
	if len(in) != 3 || in[0].ID != 1 || in[2].ID != 3 {
		t.Fatalf("InWindow = %v", in)
	}
}

func TestCountStreamRejectsOutOfOrder(t *testing.T) {
	s := NewCountStream(2)
	if _, _, err := s.Push(Edge{Time: 5}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Push(Edge{Time: 5}); !errors.Is(err, ErrOutOfOrder) {
		t.Fatalf("equal timestamp accepted: %v", err)
	}
	if _, _, err := s.Push(Edge{Time: 4}); !errors.Is(err, ErrOutOfOrder) {
		t.Fatalf("smaller timestamp accepted: %v", err)
	}
}

func TestCountStreamPanicsOnBadN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for n=0")
		}
	}()
	NewCountStream(0)
}

func TestCountStreamWindowOfOne(t *testing.T) {
	s := NewCountStream(1)
	for i := 1; i <= 5; i++ {
		_, expired, err := s.Push(Edge{Time: Timestamp(i)})
		if err != nil {
			t.Fatal(err)
		}
		if i == 1 && len(expired) != 0 {
			t.Fatal("first push expired something")
		}
		if i > 1 && (len(expired) != 1 || expired[0].ID != EdgeID(i-2)) {
			t.Fatalf("push %d expired %v", i, expired)
		}
	}
	if s.Len() != 1 || s.Seen() != 5 {
		t.Fatalf("Len=%d Seen=%d", s.Len(), s.Seen())
	}
}

// TestCountStreamInvariants property-checks the core window invariants
// over random push sequences: Len never exceeds n, IDs are sequential,
// the window is always the most recent Len edges in order, and every
// pushed edge is either in the window or was expired exactly once.
func TestCountStreamInvariants(t *testing.T) {
	f := func(n uint8, pushes uint8) bool {
		win := int(n%16) + 1
		s := NewCountStream(win)
		var all, gone []Edge
		for i := 0; i < int(pushes); i++ {
			stored, expired, err := s.Push(Edge{From: VertexID(i), Time: Timestamp(i + 1)})
			if err != nil {
				return false
			}
			all = append(all, stored)
			gone = append(gone, expired...)
			if s.Len() > win {
				return false
			}
		}
		in := s.InWindow()
		if len(in)+len(gone) != len(all) {
			return false
		}
		// The window must be exactly the suffix of all pushed edges.
		for i, e := range in {
			if e != all[len(all)-len(in)+i] {
				return false
			}
		}
		// Expired edges must be exactly the prefix, in order.
		for i, e := range gone {
			if e != all[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestCountVsTimeWindowAgreeOnUnitSpacing: with unit inter-arrival
// times, a time window of duration n holds exactly the latest n edges,
// i.e. the two window kinds expire identical edge sequences.
func TestCountVsTimeWindowAgreeOnUnitSpacing(t *testing.T) {
	const n = 7
	cs := NewCountStream(n)
	ts := NewStream(Timestamp(n))
	for i := 1; i <= 50; i++ {
		e := Edge{From: VertexID(i), Time: Timestamp(i)}
		_, ce, err1 := cs.Push(e)
		_, te, err2 := ts.Push(e)
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if len(ce) != len(te) {
			t.Fatalf("push %d: count expired %d, time expired %d", i, len(ce), len(te))
		}
		for j := range ce {
			if ce[j].ID != te[j].ID {
				t.Fatalf("push %d: expiry order differs", i)
			}
		}
	}
	if cs.Len() != ts.Len() {
		t.Fatalf("window sizes diverged: %d vs %d", cs.Len(), ts.Len())
	}
}

// TestCountVsTimeWindowDivergeOnBursts: with bursty timestamps the two
// window kinds are genuinely different — count keeps a hard edge bound
// while the time window balloons during a burst.
func TestCountVsTimeWindowDivergeOnBursts(t *testing.T) {
	cs := NewCountStream(5)
	ts := NewStream(100)
	for i := 1; i <= 20; i++ {
		e := Edge{Time: Timestamp(i)} // 20 edges within one 100-tick window
		cs.Push(e)
		ts.Push(e)
	}
	if cs.Len() != 5 {
		t.Fatalf("count window Len = %d, want 5", cs.Len())
	}
	if ts.Len() != 20 {
		t.Fatalf("time window Len = %d, want 20", ts.Len())
	}
}
