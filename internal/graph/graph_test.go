package graph

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLabelsIntern(t *testing.T) {
	l := NewLabels()
	a := l.Intern("alpha")
	b := l.Intern("beta")
	if a == b {
		t.Fatal("distinct strings must intern to distinct labels")
	}
	if got := l.Intern("alpha"); got != a {
		t.Errorf("re-interning must be stable: got %d want %d", got, a)
	}
	if l.String(a) != "alpha" || l.String(b) != "beta" {
		t.Error("String must invert Intern")
	}
	if id, ok := l.Lookup("alpha"); !ok || id != a {
		t.Error("Lookup must find interned labels")
	}
	if _, ok := l.Lookup("gamma"); ok {
		t.Error("Lookup must not intern")
	}
	if l.Intern("") != 0 {
		t.Error("empty label must be the reserved id 0")
	}
	if l.Len() != 3 {
		t.Errorf("Len: want 3 (\"\", alpha, beta), got %d", l.Len())
	}
}

func TestLabelsUnknownString(t *testing.T) {
	l := NewLabels()
	if got := l.String(Label(99)); got != "label#99" {
		t.Errorf("unknown label should format safely, got %q", got)
	}
}

func TestLabelsConcurrent(t *testing.T) {
	l := NewLabels()
	done := make(chan bool)
	for w := 0; w < 4; w++ {
		go func(w int) {
			for i := 0; i < 200; i++ {
				l.Intern(fmt.Sprintf("label-%d", i%50))
			}
			done <- true
		}(w)
	}
	for w := 0; w < 4; w++ {
		<-done
	}
	if l.Len() != 51 { // 50 labels + reserved ""
		t.Errorf("concurrent interning must dedupe: got %d labels", l.Len())
	}
}

func TestStreamWindowSemantics(t *testing.T) {
	s := NewStream(3) // window (t-3, t]
	push := func(tm Timestamp) (Edge, []Edge) {
		e, exp, err := s.Push(Edge{Time: tm})
		if err != nil {
			t.Fatalf("push at %d: %v", tm, err)
		}
		return e, exp
	}
	push(1)
	push(2)
	push(3)
	if s.Len() != 3 {
		t.Fatalf("window (0,3] must hold 3 edges, got %d", s.Len())
	}
	_, exp := push(4) // window (1,4]: edge at t=1 expires
	if len(exp) != 1 || exp[0].Time != 1 {
		t.Fatalf("want edge@1 to expire, got %v", exp)
	}
	_, exp = push(10) // window (7,10]: edges at 2,3,4 expire, oldest first
	if len(exp) != 3 || exp[0].Time != 2 || exp[1].Time != 3 || exp[2].Time != 4 {
		t.Fatalf("want edges@2,3,4 oldest-first, got %v", exp)
	}
	if s.Len() != 1 {
		t.Errorf("only edge@10 should remain, got %d", s.Len())
	}
}

func TestStreamRejectsOutOfOrder(t *testing.T) {
	s := NewStream(5)
	if _, _, err := s.Push(Edge{Time: 5}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Push(Edge{Time: 5}); !errors.Is(err, ErrOutOfOrder) {
		t.Errorf("equal timestamp must be rejected, got %v", err)
	}
	if _, _, err := s.Push(Edge{Time: 4}); !errors.Is(err, ErrOutOfOrder) {
		t.Errorf("smaller timestamp must be rejected, got %v", err)
	}
}

func TestStreamAssignsSequentialIDs(t *testing.T) {
	s := NewStream(100)
	for i := 0; i < 10; i++ {
		e, _, err := s.Push(Edge{Time: Timestamp(i + 1)})
		if err != nil {
			t.Fatal(err)
		}
		if e.ID != EdgeID(i) {
			t.Fatalf("want sequential id %d, got %d", i, e.ID)
		}
	}
	if s.Seen() != 10 {
		t.Errorf("Seen: want 10, got %d", s.Seen())
	}
}

// TestStreamRingGrowth exercises the ring buffer across many
// growth/wrap cycles and validates InWindow ordering.
func TestStreamRingGrowth(t *testing.T) {
	s := NewStream(37)
	for i := 1; i <= 1000; i++ {
		if _, _, err := s.Push(Edge{Time: Timestamp(i)}); err != nil {
			t.Fatal(err)
		}
		in := s.InWindow()
		if len(in) != s.Len() {
			t.Fatalf("InWindow length mismatch at %d", i)
		}
		for j := 1; j < len(in); j++ {
			if in[j].Time <= in[j-1].Time {
				t.Fatalf("InWindow must be oldest-first at %d", i)
			}
		}
		if in[len(in)-1].Time != Timestamp(i) {
			t.Fatalf("newest edge must be last")
		}
	}
	if s.Len() != 37 {
		t.Errorf("steady state window should hold 37 edges, got %d", s.Len())
	}
}

// TestStreamWindowInvariant property-checks that after any push
// sequence, all in-window timestamps lie in (last-|W|, last].
func TestStreamWindowInvariant(t *testing.T) {
	f := func(windowRaw uint8, gapsRaw []uint8) bool {
		window := Timestamp(windowRaw%50 + 1)
		s := NewStream(window)
		tm := Timestamp(0)
		for _, g := range gapsRaw {
			tm += Timestamp(g%7 + 1)
			if _, _, err := s.Push(Edge{Time: tm}); err != nil {
				return false
			}
			for _, e := range s.InWindow() {
				if e.Time <= tm-window || e.Time > tm {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSnapshotAddRemove(t *testing.T) {
	s := NewSnapshot()
	e1 := Edge{ID: 1, From: 10, To: 20, FromLabel: 1, ToLabel: 2, Time: 1}
	e2 := Edge{ID: 2, From: 20, To: 30, FromLabel: 2, ToLabel: 3, Time: 2}
	s.Add(e1)
	s.Add(e1) // idempotent
	s.Add(e2)
	if s.NumEdges() != 2 || s.NumVertices() != 3 {
		t.Fatalf("want 2 edges / 3 vertices, got %d/%d", s.NumEdges(), s.NumVertices())
	}
	if got := s.Out(20); len(got) != 1 {
		t.Errorf("Out(20): want 1, got %d", len(got))
	}
	if got := s.In(20); len(got) != 1 {
		t.Errorf("In(20): want 1, got %d", len(got))
	}
	s.Remove(e1)
	if s.NumVertices() != 2 {
		t.Errorf("vertex 10 must drop when isolated, got %d vertices", s.NumVertices())
	}
	if l, ok := s.VertexLabel(10); ok {
		t.Errorf("vertex 10 should be gone, has label %d", l)
	}
	if got := s.VerticesWithLabel(2); len(got) != 1 || got[0] != 20 {
		t.Errorf("label index must track removals: %v", got)
	}
	s.Remove(e2)
	if s.NumEdges() != 0 || s.NumVertices() != 0 {
		t.Error("snapshot must be empty after removing both edges")
	}
}

func TestSnapshotNeighborhood(t *testing.T) {
	// Path: 1 → 2 → 3 → 4 → 5
	s := NewSnapshot()
	for i := 1; i < 5; i++ {
		s.Add(Edge{ID: EdgeID(i), From: VertexID(i), To: VertexID(i + 1)})
	}
	n0 := s.Neighborhood([]VertexID{3}, 0)
	if len(n0) != 1 || !n0[3] {
		t.Errorf("0-hop: want {3}, got %v", n0)
	}
	n1 := s.Neighborhood([]VertexID{3}, 1)
	if len(n1) != 3 || !n1[2] || !n1[4] {
		t.Errorf("1-hop: want {2,3,4}, got %v", n1)
	}
	n2 := s.Neighborhood([]VertexID{3}, 2)
	if len(n2) != 5 {
		t.Errorf("2-hop: want all 5 vertices, got %v", n2)
	}
	// Unknown seed yields empty.
	if got := s.Neighborhood([]VertexID{99}, 3); len(got) != 0 {
		t.Errorf("unknown seed: want empty, got %v", got)
	}
}

func TestSnapshotInduced(t *testing.T) {
	s := NewSnapshot()
	s.Add(Edge{ID: 1, From: 1, To: 2})
	s.Add(Edge{ID: 2, From: 2, To: 3})
	s.Add(Edge{ID: 3, From: 3, To: 1})
	sub := s.Induced(map[VertexID]bool{1: true, 2: true})
	if sub.NumEdges() != 1 {
		t.Fatalf("induced {1,2}: want 1 edge, got %d", sub.NumEdges())
	}
	if _, ok := sub.Edge(1); !ok {
		t.Error("induced subgraph must contain edge 1")
	}
}

// TestSnapshotRandomOps property-checks adjacency consistency against a
// naive reference implementation.
func TestSnapshotRandomOps(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	s := NewSnapshot()
	live := map[EdgeID]Edge{}
	for op := 0; op < 2000; op++ {
		if rng.Intn(3) != 0 || len(live) == 0 {
			e := Edge{
				ID:   EdgeID(op),
				From: VertexID(rng.Intn(20)), To: VertexID(rng.Intn(20)),
				FromLabel: Label(rng.Intn(3)), ToLabel: Label(rng.Intn(3)),
			}
			// Align labels for shared vertices with the reference.
			consistent := true
			for _, x := range live {
				if x.From == e.From && x.FromLabel != e.FromLabel ||
					x.To == e.From && x.ToLabel != e.FromLabel ||
					x.From == e.To && x.FromLabel != e.ToLabel ||
					x.To == e.To && x.ToLabel != e.ToLabel {
					consistent = false
					break
				}
			}
			if !consistent {
				continue
			}
			s.Add(e)
			live[e.ID] = e
		} else {
			for id, e := range live {
				s.Remove(e)
				delete(live, id)
				break
			}
		}
		if s.NumEdges() != len(live) {
			t.Fatalf("op %d: edge count drifted: snapshot %d, ref %d", op, s.NumEdges(), len(live))
		}
		// Degree spot check.
		outDeg := map[VertexID]int{}
		for _, e := range live {
			outDeg[e.From]++
		}
		for v, d := range outDeg {
			if len(s.Out(v)) != d {
				t.Fatalf("op %d: out-degree of %d drifted", op, v)
			}
		}
	}
}

func TestEdgeHelpers(t *testing.T) {
	e := Edge{ID: 7, From: 1, To: 2, FromLabel: 10, ToLabel: 20, Time: 5}
	if !e.Touches(1) || !e.Touches(2) || e.Touches(3) {
		t.Error("Touches misreports endpoints")
	}
	if e.LabelOf(1) != 10 || e.LabelOf(2) != 20 {
		t.Error("LabelOf misreports labels")
	}
	defer func() {
		if recover() == nil {
			t.Error("LabelOf of a non-endpoint must panic")
		}
	}()
	e.LabelOf(99)
}
