// Package graph provides the streaming graph model used throughout
// timingsubg: labelled vertices, directed timestamped edges, a time-based
// sliding window, and snapshots with adjacency access for baseline
// algorithms that re-search the window contents.
package graph

import (
	"fmt"
	"sync"
)

// Label is an interned label identifier. Vertex labels and edge labels are
// drawn from the same intern table; semantically they live in separate
// namespaces because query and data use them in the same positions only.
type Label int32

// NoLabel is the zero Label, used for unlabelled edges.
const NoLabel Label = 0

// Labels interns label strings to dense Label identifiers so that hot
// matching paths compare integers instead of strings. The zero value is
// ready to use. Labels is safe for concurrent use.
type Labels struct {
	mu    sync.RWMutex
	byStr map[string]Label
	byID  []string
}

// NewLabels returns an empty intern table. ID 0 is reserved for the empty
// label ("").
func NewLabels() *Labels {
	l := &Labels{byStr: make(map[string]Label)}
	l.byStr[""] = 0
	l.byID = append(l.byID, "")
	return l
}

// Intern returns the Label for s, assigning a fresh identifier if s has
// not been seen before.
func (l *Labels) Intern(s string) Label {
	l.mu.RLock()
	id, ok := l.byStr[s]
	l.mu.RUnlock()
	if ok {
		return id
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if id, ok = l.byStr[s]; ok {
		return id
	}
	id = Label(len(l.byID))
	l.byStr[s] = id
	l.byID = append(l.byID, s)
	return id
}

// Lookup returns the Label for s and whether it exists, without interning.
func (l *Labels) Lookup(s string) (Label, bool) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	id, ok := l.byStr[s]
	return id, ok
}

// String returns the string form of id. Unknown identifiers yield a
// formatted placeholder rather than panicking, which keeps diagnostic
// printing safe.
func (l *Labels) String(id Label) string {
	l.mu.RLock()
	defer l.mu.RUnlock()
	if int(id) < len(l.byID) {
		return l.byID[id]
	}
	return fmt.Sprintf("label#%d", int32(id))
}

// Strings returns every interned label in ID order (index i is the
// string of Label i, starting with the reserved empty label). Interning
// the returned slice in order into a fresh table reproduces the same
// IDs — the durability contract serving layers rely on, since logs and
// checkpoints store IDs, not strings.
func (l *Labels) Strings() []string {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return append([]string(nil), l.byID...)
}

// Len reports how many labels have been interned (including the reserved
// empty label).
func (l *Labels) Len() int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return len(l.byID)
}
