package graph

import (
	"errors"
	"fmt"
)

// ErrOutOfOrder is returned when an edge is pushed with a timestamp not
// strictly greater than the previous edge's timestamp. The paper's model
// (Definition 1) requires strictly increasing timestamps.
var ErrOutOfOrder = errors.New("graph: edge timestamps must be strictly increasing")

// Stream is an ordered sequence of edges together with a sliding-window
// duration. Advancing the stream yields the edges that newly arrive and
// those that expire, which is exactly the interface continuous engines
// consume.
//
// Stream keeps the in-window edges in a FIFO ring so that expiry is O(1)
// amortized. It does not maintain adjacency; Snapshot builds adjacency on
// demand for baselines that need it.
type Stream struct {
	window Timestamp // |W|
	edges  []Edge    // ring buffer of in-window edges
	head   int       // index of oldest in-window edge
	count  int       // number of in-window edges
	lastT  Timestamp // timestamp of the most recent edge
	nextID EdgeID
	seen   int64 // total edges ever pushed
}

// NewStream returns a stream with sliding-window duration |W| = window.
// The window must be positive.
func NewStream(window Timestamp) *Stream {
	if window <= 0 {
		panic(fmt.Sprintf("graph: window must be positive, got %d", window))
	}
	return &Stream{window: window, lastT: -1 << 62}
}

// RestoreStream rebuilds a stream from checkpointed state: the window
// duration, the in-window edges (oldest first, keeping their original
// IDs and timestamps), and the next edge ID to assign. Subsequent
// pushes continue exactly where the checkpointed stream left off, so
// replayed edges receive the same IDs they had before the crash.
func RestoreStream(window Timestamp, inWindow []Edge, nextID EdgeID) *Stream {
	s := NewStream(window)
	for _, e := range inWindow {
		if e.Time <= s.lastT {
			panic(fmt.Sprintf("graph: restore: edges out of order at %s", e))
		}
		s.lastT = e.Time
		s.push(e)
	}
	s.nextID = nextID
	s.seen = int64(nextID)
	return s
}

// Window returns the window duration |W|.
func (s *Stream) Window() Timestamp { return s.window }

// Len returns the number of edges currently inside the window.
func (s *Stream) Len() int { return s.count }

// Seen returns the total number of edges ever pushed.
func (s *Stream) Seen() int64 { return s.seen }

// LastTime returns the timestamp of the most recently pushed edge, or a
// very small value if no edge has been pushed.
func (s *Stream) LastTime() Timestamp { return s.lastT }

// Push appends an edge with the given attributes at timestamp t, assigns
// it an ID, and returns the stored edge together with the edges that
// expire as the window advances to (t−|W|, t]. Expired edges are returned
// oldest first, matching the chronological transaction order required for
// streaming consistency (Definition 11).
func (s *Stream) Push(e Edge) (Edge, []Edge, error) {
	if e.Time <= s.lastT {
		return Edge{}, nil, fmt.Errorf("%w: got %d after %d", ErrOutOfOrder, e.Time, s.lastT)
	}
	e.ID = s.nextID
	s.nextID++
	s.seen++
	s.lastT = e.Time
	expired := s.expireBefore(e.Time - s.window + 1)
	s.push(e)
	return e, expired, nil
}

// expireBefore removes and returns all edges with Time < cut, oldest
// first.
func (s *Stream) expireBefore(cut Timestamp) []Edge {
	var out []Edge
	for s.count > 0 {
		oldest := s.edges[s.head]
		if oldest.Time >= cut {
			break
		}
		out = append(out, oldest)
		s.edges[s.head] = Edge{}
		s.head = (s.head + 1) % len(s.edges)
		s.count--
	}
	return out
}

func (s *Stream) push(e Edge) {
	if s.count == len(s.edges) {
		grown := make([]Edge, maxInt(4, 2*len(s.edges)))
		for i := 0; i < s.count; i++ {
			grown[i] = s.edges[(s.head+i)%len(s.edges)]
		}
		s.edges = grown
		s.head = 0
	}
	s.edges[(s.head+s.count)%len(s.edges)] = e
	s.count++
}

// InWindow returns a copy of the edges currently inside the window,
// oldest first.
func (s *Stream) InWindow() []Edge {
	out := make([]Edge, s.count)
	for i := 0; i < s.count; i++ {
		out[i] = s.edges[(s.head+i)%len(s.edges)]
	}
	return out
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
