package graph

// Snapshot is the graph G_t induced by the edges inside the current
// window (Definition 2), with adjacency indexes. It exists for baseline
// algorithms (IncMat + static isomorphism) that must search the window
// contents; the Timing engine never materializes snapshots.
type Snapshot struct {
	edges    map[EdgeID]Edge
	out      map[VertexID][]EdgeID
	in       map[VertexID][]EdgeID
	labels   map[VertexID]Label
	byVLabel map[Label][]VertexID
}

// NewSnapshot returns an empty snapshot.
func NewSnapshot() *Snapshot {
	return &Snapshot{
		edges:    make(map[EdgeID]Edge),
		out:      make(map[VertexID][]EdgeID),
		in:       make(map[VertexID][]EdgeID),
		labels:   make(map[VertexID]Label),
		byVLabel: make(map[Label][]VertexID),
	}
}

// SnapshotOf builds a snapshot from a set of edges.
func SnapshotOf(edges []Edge) *Snapshot {
	s := NewSnapshot()
	for _, e := range edges {
		s.Add(e)
	}
	return s
}

// Add inserts edge e. Adding an edge twice is a no-op.
func (s *Snapshot) Add(e Edge) {
	if _, ok := s.edges[e.ID]; ok {
		return
	}
	s.edges[e.ID] = e
	s.out[e.From] = append(s.out[e.From], e.ID)
	s.in[e.To] = append(s.in[e.To], e.ID)
	s.addVertex(e.From, e.FromLabel)
	s.addVertex(e.To, e.ToLabel)
}

func (s *Snapshot) addVertex(v VertexID, l Label) {
	if _, ok := s.labels[v]; ok {
		return
	}
	s.labels[v] = l
	s.byVLabel[l] = append(s.byVLabel[l], v)
}

// Remove deletes edge e. Vertices that become isolated are removed from
// the vertex set, matching Definition 2 (V_t is the set of endpoints of
// in-window edges).
func (s *Snapshot) Remove(e Edge) {
	if _, ok := s.edges[e.ID]; !ok {
		return
	}
	delete(s.edges, e.ID)
	s.out[e.From] = removeID(s.out[e.From], e.ID)
	s.in[e.To] = removeID(s.in[e.To], e.ID)
	s.maybeDropVertex(e.From)
	s.maybeDropVertex(e.To)
}

func (s *Snapshot) maybeDropVertex(v VertexID) {
	if len(s.out[v]) > 0 || len(s.in[v]) > 0 {
		return
	}
	delete(s.out, v)
	delete(s.in, v)
	l, ok := s.labels[v]
	if !ok {
		return
	}
	delete(s.labels, v)
	s.byVLabel[l] = removeVertex(s.byVLabel[l], v)
}

func removeID(ids []EdgeID, id EdgeID) []EdgeID {
	for i, x := range ids {
		if x == id {
			ids[i] = ids[len(ids)-1]
			return ids[:len(ids)-1]
		}
	}
	return ids
}

func removeVertex(vs []VertexID, v VertexID) []VertexID {
	for i, x := range vs {
		if x == v {
			vs[i] = vs[len(vs)-1]
			return vs[:len(vs)-1]
		}
	}
	return vs
}

// NumEdges returns the number of edges in the snapshot.
func (s *Snapshot) NumEdges() int { return len(s.edges) }

// NumVertices returns the number of non-isolated vertices.
func (s *Snapshot) NumVertices() int { return len(s.labels) }

// Edge returns the edge with the given ID.
func (s *Snapshot) Edge(id EdgeID) (Edge, bool) {
	e, ok := s.edges[id]
	return e, ok
}

// Out returns the IDs of edges leaving v.
func (s *Snapshot) Out(v VertexID) []EdgeID { return s.out[v] }

// In returns the IDs of edges entering v.
func (s *Snapshot) In(v VertexID) []EdgeID { return s.in[v] }

// VertexLabel returns the label of v and whether v is present.
func (s *Snapshot) VertexLabel(v VertexID) (Label, bool) {
	l, ok := s.labels[v]
	return l, ok
}

// VerticesWithLabel returns the vertices carrying label l.
func (s *Snapshot) VerticesWithLabel(l Label) []VertexID { return s.byVLabel[l] }

// Vertices calls fn for every vertex until fn returns false.
func (s *Snapshot) Vertices(fn func(VertexID, Label) bool) {
	for v, l := range s.labels {
		if !fn(v, l) {
			return
		}
	}
}

// Edges calls fn for every edge until fn returns false.
func (s *Snapshot) Edges(fn func(Edge) bool) {
	for _, e := range s.edges {
		if !fn(e) {
			return
		}
	}
}

// Neighborhood returns the set of vertices within d hops of seed,
// ignoring direction. It is the "affected area" primitive used by the
// IncMat baseline (Fan et al.): an update touching an edge can only
// change matches whose vertices lie within query-diameter hops of the
// edge's endpoints.
func (s *Snapshot) Neighborhood(seeds []VertexID, d int) map[VertexID]bool {
	seen := make(map[VertexID]bool, len(seeds))
	frontier := make([]VertexID, 0, len(seeds))
	for _, v := range seeds {
		if _, ok := s.labels[v]; ok && !seen[v] {
			seen[v] = true
			frontier = append(frontier, v)
		}
	}
	for hop := 0; hop < d && len(frontier) > 0; hop++ {
		var next []VertexID
		for _, v := range frontier {
			for _, id := range s.out[v] {
				if e, ok := s.edges[id]; ok && !seen[e.To] {
					seen[e.To] = true
					next = append(next, e.To)
				}
			}
			for _, id := range s.in[v] {
				if e, ok := s.edges[id]; ok && !seen[e.From] {
					seen[e.From] = true
					next = append(next, e.From)
				}
			}
		}
		frontier = next
	}
	return seen
}

// Induced returns the snapshot induced by keeping only edges whose both
// endpoints are in keep.
func (s *Snapshot) Induced(keep map[VertexID]bool) *Snapshot {
	out := NewSnapshot()
	for _, e := range s.edges {
		if keep[e.From] && keep[e.To] {
			out.Add(e)
		}
	}
	return out
}

// SpaceBytes estimates the resident size of the snapshot's adjacency
// structures, used for the space experiments (Figs. 17-18): baselines
// must keep the window's graph structure, the Timing engine does not.
func (s *Snapshot) SpaceBytes() int64 {
	const edgeSz = 56 // Edge struct
	const idSz = 8
	var n int64
	n += int64(len(s.edges)) * (edgeSz + 16)
	for _, ids := range s.out {
		n += int64(len(ids))*idSz + 16
	}
	for _, ids := range s.in {
		n += int64(len(ids))*idSz + 16
	}
	n += int64(len(s.labels)) * 24
	return n
}
