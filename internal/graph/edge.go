package graph

import "fmt"

// VertexID identifies a data vertex. IDs are assigned by the producer of
// the stream; the graph layer only requires them to be unique per vertex.
type VertexID int64

// EdgeID identifies a data edge. The streaming layer assigns sequential
// IDs in arrival order, so EdgeID order coincides with timestamp order.
type EdgeID int64

// Timestamp is the arrival time of an edge. The paper's model assigns each
// edge a distinct, strictly increasing timestamp; Timestamp is an abstract
// tick (the harness uses average-inter-arrival units, Sec. VII-C).
type Timestamp int64

// Edge is one element of a streaming graph: a directed edge From→To with
// vertex labels, an optional edge label, and an arrival timestamp.
type Edge struct {
	ID        EdgeID
	From, To  VertexID
	FromLabel Label
	ToLabel   Label
	EdgeLabel Label
	Time      Timestamp
}

// String renders the edge for diagnostics, e.g. "σ3(7→8 @5)".
func (e Edge) String() string {
	return fmt.Sprintf("σ%d(%d→%d @%d)", e.ID, e.From, e.To, e.Time)
}

// Touches reports whether v is one of the edge's endpoints.
func (e Edge) Touches(v VertexID) bool { return e.From == v || e.To == v }

// LabelOf returns the label of endpoint v; it panics if v is not an
// endpoint of e, which would indicate a programming error in a caller.
func (e Edge) LabelOf(v VertexID) Label {
	switch v {
	case e.From:
		return e.FromLabel
	case e.To:
		return e.ToLabel
	}
	panic(fmt.Sprintf("graph: vertex %d is not an endpoint of %s", v, e))
}
