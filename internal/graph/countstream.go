package graph

import "fmt"

// Windower is the window-maintenance interface the matching engines
// consume: push an edge, learn what arrived and what expired. Stream
// (time-based window, the paper's model) and CountStream (count-based
// window, a common alternative in stream systems) both implement it.
type Windower interface {
	// Push appends an edge, assigns its ID, and returns the stored edge
	// with the edges that expire as the window advances.
	Push(e Edge) (Edge, []Edge, error)
	// Len returns the number of edges currently inside the window.
	Len() int
	// Seen returns the total number of edges ever pushed.
	Seen() int64
	// InWindow returns a copy of the in-window edges, oldest first.
	InWindow() []Edge
	// LastTime returns the most recent edge timestamp.
	LastTime() Timestamp
}

var (
	_ Windower = (*Stream)(nil)
	_ Windower = (*CountStream)(nil)
)

// CountStream is a streaming graph under a count-based sliding window:
// the window always holds the most recent n edges (or fewer, before n
// edges have arrived). Timestamps must still be strictly increasing —
// the timing-order semantics of matches are unchanged; only the expiry
// rule differs from the paper's time-based window.
//
// Count windows bound the engine's state by construction, which makes
// them the right choice when arrival rate is bursty and a hard memory
// ceiling matters more than a wall-clock horizon.
type CountStream struct {
	n      int
	edges  []Edge // ring buffer of at most n in-window edges
	head   int
	count  int
	lastT  Timestamp
	nextID EdgeID
	seen   int64
}

// NewCountStream returns a stream whose window holds the latest n
// edges. n must be positive.
func NewCountStream(n int) *CountStream {
	if n <= 0 {
		panic(fmt.Sprintf("graph: count window must be positive, got %d", n))
	}
	return &CountStream{n: n, edges: make([]Edge, n), lastT: -1 << 62}
}

// N returns the window size in edges.
func (s *CountStream) N() int { return s.n }

// Len returns the number of edges currently inside the window.
func (s *CountStream) Len() int { return s.count }

// Seen returns the total number of edges ever pushed.
func (s *CountStream) Seen() int64 { return s.seen }

// LastTime returns the timestamp of the most recently pushed edge, or a
// very small value if no edge has been pushed.
func (s *CountStream) LastTime() Timestamp { return s.lastT }

// Push appends an edge, assigns it an ID, and returns it with the edge
// (at most one) that falls out of the count window.
func (s *CountStream) Push(e Edge) (Edge, []Edge, error) {
	if e.Time <= s.lastT {
		return Edge{}, nil, fmt.Errorf("%w: got %d after %d", ErrOutOfOrder, e.Time, s.lastT)
	}
	e.ID = s.nextID
	s.nextID++
	s.seen++
	s.lastT = e.Time
	var expired []Edge
	if s.count == s.n {
		expired = []Edge{s.edges[s.head]}
		s.edges[s.head] = Edge{}
		s.head = (s.head + 1) % s.n
		s.count--
	}
	s.edges[(s.head+s.count)%s.n] = e
	s.count++
	return e, expired, nil
}

// InWindow returns a copy of the edges currently inside the window,
// oldest first.
func (s *CountStream) InWindow() []Edge {
	out := make([]Edge, s.count)
	for i := 0; i < s.count; i++ {
		out[i] = s.edges[(s.head+i)%s.n]
	}
	return out
}
