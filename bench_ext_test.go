package timingsubg

import (
	"testing"
)

// Ablation benches for the post-paper extensions: what durability,
// count windows, and channel delivery cost relative to the plain
// in-memory searcher on the same stream and query.

func extBenchStream(b *testing.B, n int) ([]Edge, *Query) {
	b.Helper()
	labels := NewLabels()
	q := persistTestQuery(b, labels)
	return persistTestStream(labels, n, 51), q
}

// BenchmarkFeedPlain is the baseline: in-memory searcher, time window.
func BenchmarkFeedPlain(b *testing.B) {
	edges, q := extBenchStream(b, 4096)
	s, err := NewSearcher(q, Options{Window: 50})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := edges[i%len(edges)]
		e.Time = Timestamp(i + 1)
		if _, err := s.Feed(e); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFeedCountWindow swaps in the count-based window.
func BenchmarkFeedCountWindow(b *testing.B) {
	edges, q := extBenchStream(b, 4096)
	s, err := NewSearcher(q, Options{CountWindow: 50})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := edges[i%len(edges)]
		e.Time = Timestamp(i + 1)
		if _, err := s.Feed(e); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFeedDurable adds the WAL (no fsync) and periodic
// checkpointing — the full durability tax per edge.
func BenchmarkFeedDurable(b *testing.B) {
	edges, q := extBenchStream(b, 4096)
	ps, err := OpenPersistent(q, PersistentOptions{
		Options:         Options{Window: 50},
		Dir:             b.TempDir(),
		CheckpointEvery: 4096,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := edges[i%len(edges)]
		e.Time = Timestamp(i + 1)
		if _, err := ps.Feed(e); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if err := ps.Close(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkCheckpoint measures one forced checkpoint of a populated
// window (write + GC + WAL truncation).
func BenchmarkCheckpoint(b *testing.B) {
	edges, q := extBenchStream(b, 4096)
	ps, err := OpenPersistent(q, PersistentOptions{
		Options:         Options{Window: 500},
		Dir:             b.TempDir(),
		CheckpointEvery: 1 << 30, // manual only
	})
	if err != nil {
		b.Fatal(err)
	}
	for i, e := range edges {
		e.Time = Timestamp(i + 1)
		if _, err := ps.Feed(e); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := ps.Checkpoint(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if err := ps.Close(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkRecovery measures OpenPersistent against a directory with a
// populated checkpoint — the restart cost a deployment pays.
func BenchmarkRecovery(b *testing.B) {
	edges, q := extBenchStream(b, 4096)
	dir := b.TempDir()
	ps, err := OpenPersistent(q, PersistentOptions{
		Options: Options{Window: 500},
		Dir:     dir,
	})
	if err != nil {
		b.Fatal(err)
	}
	for i, e := range edges {
		e.Time = Timestamp(i + 1)
		if _, err := ps.Feed(e); err != nil {
			b.Fatal(err)
		}
	}
	if err := ps.Close(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ps, err := OpenPersistent(q, PersistentOptions{
			Options: Options{Window: 500},
			Dir:     dir,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		// Close writes a checkpoint; keep it out of the recovery timing.
		if err := ps.Close(); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
	}
}
